"""CPU core model.

A :class:`Core` executes the poll loops of the tasks pinned to it, one
iteration at a time, advancing simulated time by the cycles the tasks
report.  This captures the two effects the paper's single-core methodology
hinges on:

* *sharing*: all ports/directions of a switch run on one core, so
  bidirectional traffic halves the per-direction budget (Sec. 5.1:
  "Software switches are always deployed on a single core");
* *I/O discipline*: DPDK-style switches busy-wait (poll mode) while
  VALE/netmap sleeps and is woken by interrupts, paying a wake-up latency
  that dominates its low-load RTT (Sec. 5.3).
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Protocol

from repro.core.units import cycles_to_ns

if TYPE_CHECKING:
    from repro.core.engine import Simulator

#: Default clock of the paper's Xeon E5-2690 v3 (Turbo Boost disabled,
#: governor pinned to "performance" -- Sec. 5.1).
DEFAULT_FREQ_HZ = 2.6e9


class Task(Protocol):
    """Anything schedulable on a core: returns cycles consumed per poll."""

    def poll(self, core: "Core") -> float:
        """Run one poll-loop iteration; return CPU cycles consumed (0 = idle)."""
        ...


class Core:
    """A cycle-accounted CPU core running pinned tasks round-robin.

    Parameters
    ----------
    sim:
        Shared simulator.
    name:
        Diagnostic label ("numa0/core2").
    freq_hz:
        Core clock; cycles reported by tasks convert to time at this rate.
    interrupt_driven:
        If True the core sleeps after ``idle_polls_before_sleep`` empty
        iterations and must be woken via :meth:`wake` (netmap/VALE model).
        If False it busy-waits, re-polling every ``idle_loop_cycles``.
    interrupt_latency_ns:
        Wake-up cost: interrupt delivery + scheduler + syscall return.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        freq_hz: float = DEFAULT_FREQ_HZ,
        interrupt_driven: bool = False,
        interrupt_latency_ns: float = 6_000.0,
        idle_loop_cycles: float = 80.0,
        idle_polls_before_sleep: int = 8,
    ) -> None:
        self.sim = sim
        self.name = name
        self.freq_hz = freq_hz
        self.interrupt_driven = interrupt_driven
        self.interrupt_latency_ns = interrupt_latency_ns
        self.idle_loop_cycles = idle_loop_cycles
        self.idle_polls_before_sleep = idle_polls_before_sleep

        self.tasks: list[Task] = []
        self.busy_ns = 0.0
        self._started = False
        self._sleeping = False
        self._idle_streak = 0
        # (idle_loop_cycles, cycles_to_ns(idle_loop_cycles)) memo -- the
        # idle re-arm delay is recomputed only when the cycle count
        # changes, not once per idle iteration.
        self._idle_cache: tuple[float, float] = (-1.0, 0.0)
        # Idle-grid parking (pure-reactive tasks only, see start()).
        self._park_rings = None
        self._parked = False
        self._parked_at = 0.0
        #: Optional trace probe (:class:`repro.obs.session.CoreProbe`);
        #: None unless an observation session is attached.
        self.obs = None

    def attach(self, task: Task) -> None:
        """Pin a task to this core (appended to the round-robin order)."""
        self.tasks.append(task)

    def start(self) -> None:
        """Begin executing the poll loop at the current simulated time."""
        if self._started:
            return
        self._started = True
        # A core may *park* while idle -- stop re-arming the idle grid and
        # resume at the exact grid point after a frame arrives -- only when
        # every pinned task is pure-reactive: it declares the rings it
        # watches via a ``park_rings`` attribute, does nothing but drain
        # them, and keeps no time-based obligations (drain timers, stalls).
        # The resulting schedule of *executed* polls is identical to
        # busy-polling the grid; only the no-op iterations disappear.
        rings: list | None = []
        for task in self.tasks:
            task_rings = getattr(task, "park_rings", None)
            if task_rings is None:
                rings = None
                break
            rings.extend(task_rings)
        if rings and not self.interrupt_driven and all(
            ring.on_push is None for ring in rings
        ):
            self._park_rings = rings
        self.sim.after(0, self._iterate)

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles_to_ns(cycles, self.freq_hz)

    def wake(self) -> None:
        """Interrupt: resume a sleeping core after the wake-up latency."""
        if not self._started or not self._sleeping:
            return
        self._sleeping = False
        self._idle_streak = 0
        if self.obs is not None:
            self.obs.on_wake(self.name, self.sim.now)
        self.sim.after(self.interrupt_latency_ns, self._iterate)

    @property
    def sleeping(self) -> bool:
        return self._sleeping

    def _iterate(self) -> None:
        if self._sleeping:
            return
        cycles = 0.0
        for task in self.tasks:
            cycles += task.poll(self)
        if cycles > 0:
            self._idle_streak = 0
            delay = self.cycles_to_ns(cycles)
            self.busy_ns += delay
            if self.obs is not None:
                self.obs.on_poll(self.name, self.sim.now, delay, cycles)
        else:
            self._idle_streak += 1
            if (
                self.interrupt_driven
                and self._idle_streak >= self.idle_polls_before_sleep
            ):
                self._sleeping = True
                if self.obs is not None:
                    self.obs.on_sleep(self.name, self.sim.now)
                return
            idle_cycles, delay = self._idle_cache
            if idle_cycles != self.idle_loop_cycles:
                idle_cycles = self.idle_loop_cycles
                delay = self.cycles_to_ns(idle_cycles)
                self._idle_cache = (idle_cycles, delay)
            rings = self._park_rings
            if rings is not None:
                for ring in rings:
                    if ring._frames:
                        break  # residual frames: keep polling the grid
                else:
                    self._parked = True
                    self._parked_at = self.sim.now
                    for ring in rings:
                        ring.on_push = self._unpark
                    return
        # Inlined sim.after(): the re-arm is the single hottest schedule
        # in the simulation and the delay is never negative.
        sim = self.sim
        heappush(sim._queue, (sim._now + delay, sim._seq, self._iterate))
        sim._seq += 1

    def _unpark(self) -> None:
        """A frame landed in a watched ring: rejoin the idle poll grid.

        Runs inside ``Ring.push`` at the arrival timestamp.  The next poll
        fires at the first grid point the busy-polling core would have
        reached after this instant; the grid is reconstructed by the same
        repeated float addition the per-iteration re-arm performs, so poll
        times are bit-identical to never having parked.
        """
        self._parked = False
        for ring in self._park_rings:
            ring.on_push = None
        sim = self.sim
        now = sim.now
        delay = self._idle_cache[1]
        # The parking poll already ran at _parked_at; resume strictly after.
        t = self._parked_at + delay
        while t < now:
            t += delay
        sim.at(t, self._iterate)

    # -- fault hooks (repro.faults) ----------------------------------------
    #
    # Preemption and frequency changes piggyback on state the poll loop
    # already tests every iteration (``_sleeping``, ``_idle_cache``), so a
    # core that is never faulted executes exactly the same instructions.

    def preempt(self) -> None:
        """The OS steals the core: pending poll iterations become no-ops.

        Any already-scheduled ``_iterate`` event fires once, sees the
        sleeping flag and returns without re-arming -- the poll chain is
        broken until :meth:`resume_from_preemption`.
        """
        if not self._started or self._sleeping:
            return
        self._sleeping = True

    def resume_from_preemption(self) -> None:
        """The scheduler gives the core back; polling restarts *now*.

        Unlike :meth:`wake` there is no interrupt latency: the thread was
        runnable all along, it simply was not on the CPU.
        """
        if not self._started or not self._sleeping:
            return
        self._sleeping = False
        self._idle_streak = 0
        self.sim.after(0.0, self._iterate)

    def set_frequency(self, freq_hz: float) -> None:
        """Change the core clock (thermal throttling episodes).

        Invalidates the idle-delay memo, which caches a *time* computed at
        the old frequency under a cycle-count key.
        """
        if freq_hz <= 0:
            raise ValueError(f"core frequency must be positive, got {freq_hz}")
        self.freq_hz = freq_hz
        self._idle_cache = (-1.0, 0.0)

    def utilization(self, elapsed_ns: float) -> float:
        """Fraction of ``elapsed_ns`` spent doing useful work."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / elapsed_ns)
