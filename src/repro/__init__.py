"""repro: simulation-based reproduction of "Comparing the Performance of
State-of-the-Art Software Switches for NFV" (Zhang et al., CoNEXT 2019).

The package rebuilds the paper's entire methodology on a discrete-event
simulated testbed: seven behavioural switch models (BESS, FastClick,
OvS-DPDK, Snabb, VPP, VALE, t4p4s), the four NFV test scenarios (p2p,
p2v, v2v, loopback service chains) and the two metrics (saturating-load
throughput and RTT latency at fractions of R+).

Quick start::

    from repro.scenarios import p2p
    from repro.measure import measure_throughput

    result = measure_throughput(p2p.build, "vpp", frame_size=64)
    print(result.gbps)

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results of every table and figure.
"""

from repro.measure import (
    LatencyPoint,
    RunResult,
    drive,
    estimate_r_plus,
    latency_sweep,
    measure_latency_at,
    measure_throughput,
)
from repro.scenarios import BUILDERS, Testbed, loopback, p2p, p2v, v2v
from repro.switches import ALL_SWITCHES, create_switch, params_for, switch_names

__version__ = "1.0.0"

__all__ = [
    "ALL_SWITCHES",
    "BUILDERS",
    "LatencyPoint",
    "RunResult",
    "Testbed",
    "__version__",
    "create_switch",
    "drive",
    "estimate_r_plus",
    "latency_sweep",
    "loopback",
    "measure_latency_at",
    "measure_throughput",
    "p2p",
    "p2v",
    "params_for",
    "switch_names",
    "v2v",
]
