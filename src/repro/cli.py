"""Command-line entry point: run one experiment from a shell.

Examples::

    repro-bench p2p --switch vpp --size 64 --bidirectional
    repro-bench loopback --switch vale --vnfs 3 --size 1024
    repro-bench p2p --switch bess --latency
    repro-bench v2v-latency --switch snabb
    repro-bench suite --switch vpp --suite smoke
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import format_table
from repro.measure.latency import latency_sweep
from repro.measure.throughput import measure_throughput
from repro.scenarios import loopback, p2p, p2v, v2v
from repro.measure.runner import drive
from repro.switches.registry import switch_names


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run one software-switch benchmark on the simulated testbed.",
    )
    parser.add_argument(
        "scenario",
        choices=["p2p", "p2v", "v2v", "loopback", "v2v-latency", "suite", "validate"],
        help="test scenario (Sec. 4 of the paper), 'suite', or 'validate'",
    )
    parser.add_argument("--switch", default="vpp", choices=sorted(switch_names()))
    parser.add_argument("--size", type=int, default=64, help="frame size in bytes")
    parser.add_argument("--bidirectional", action="store_true")
    parser.add_argument("--vnfs", type=int, default=1, help="loopback chain length")
    parser.add_argument("--latency", action="store_true", help="run the R+ latency sweep")
    parser.add_argument("--suite", default="smoke", help="suite name for the 'suite' command")
    parser.add_argument("--seed", type=int, default=1)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    builders = {"p2p": p2p.build, "p2v": p2v.build, "v2v": v2v.build, "loopback": loopback.build}

    if args.scenario == "validate":
        from repro.analysis.validate import summarize, validate

        checks = validate(progress=lambda msg: print(f"[validate] {msg}"))
        rows = [
            [
                check.artifact,
                check.name,
                check.measured,
                check.expected,
                "PASS" if check.passed else "FAIL",
            ]
            for check in checks
        ]
        print(
            format_table(
                ["artifact", "criterion", "measured", "paper", "verdict"],
                rows,
                title="Reproduction validation",
            )
        )
        passed, total = summarize(checks)
        print(f"\n{passed}/{total} criteria satisfied")
        return 0 if passed == total else 2

    if args.scenario == "suite":
        from repro.measure.suites import SUITES

        suite = SUITES.get(args.suite)
        if suite is None:
            print(f"unknown suite {args.suite!r}; known: {sorted(SUITES)}")
            return 1
        results = suite.run(args.switch, seed=args.seed)
        rows = [
            [name, result.gbps if result else None, result.mpps if result else None]
            for name, result in results.items()
        ]
        print(
            format_table(
                ["experiment", "Gbps", "Mpps"],
                rows,
                title=f"suite '{suite.name}' for {args.switch}: {suite.description}",
            )
        )
        return 0

    if args.scenario == "v2v-latency":
        tb = v2v.build_latency(args.switch, frame_size=args.size, seed=args.seed)
        result = drive(tb)
        latency = result.latency
        mean = latency.mean_us if latency is not None and len(latency) else float("nan")
        std = latency.std_us if latency is not None and len(latency) else float("nan")
        print(f"v2v RTT latency for {args.switch}: mean={mean:.1f} us std={std:.1f} us")
        return 0

    build = builders[args.scenario]
    extra = {"n_vnfs": args.vnfs} if args.scenario == "loopback" else {}

    if args.latency:
        points = latency_sweep(build, args.switch, frame_size=args.size, seed=args.seed, **extra)
        rows = [
            (f"{fraction:.2f} R+", point.mean_us, point.std_us, len(point.sample))
            for fraction, point in sorted(points.items())
        ]
        print(
            format_table(
                ["load", "mean RTT (us)", "std (us)", "probes"],
                rows,
                title=f"{args.scenario} latency, {args.switch}, {args.size}B",
            )
        )
        return 0

    result = measure_throughput(
        build,
        args.switch,
        frame_size=args.size,
        bidirectional=args.bidirectional,
        seed=args.seed,
        **extra,
    )
    direction = "bidirectional" if args.bidirectional else "unidirectional"
    print(
        f"{args.scenario} {direction} {args.size}B {args.switch}: "
        f"{result.gbps:.2f} Gbps ({result.mpps:.2f} Mpps)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
