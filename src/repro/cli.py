"""Command-line entry point: run one experiment from a shell.

Examples::

    repro-bench p2p --switch vpp --size 64 --bidirectional
    repro-bench loopback --switch vale --vnfs 3 --size 1024
    repro-bench p2p --switch bess --latency
    repro-bench p2p --switch vpp --profile --metrics
    repro-bench trace p2p --switch vpp --trace-out trace.json
    repro-bench flowstats p2p --switch ovs-dpdk --flows 100k --flow-dist zipf \\
        --top-k 64
    repro-bench resilience p2p --switch vale \\
        --fault nic-link-flap@sut-nic.p1:at_ns=1200000,duration_ns=300000
    repro-bench v2v-latency --switch snabb
    repro-bench suite --switch vpp --suite smoke --workers 4
    repro-bench validate --workers 4 --cache
    repro-bench campaign --suite paper --workers 4 --repeat 5 \\
        --seed-policy trial --ci-target 0.05 --trial-summary trials.json \\
        --store paper.jsonl --export-csv paper.csv
    repro-bench perf --json

Progress and telemetry go to stderr; tables, measurements and
``--export-csv -`` go to stdout, so output can be piped or redirected
cleanly.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.tables import format_table
from repro.measure.latency import latency_sweep
from repro.measure.throughput import measure_throughput
from repro.scenarios import loopback, p2p, p2v, v2v
from repro.measure.runner import DEFAULT_MEASURE_NS, DEFAULT_WARMUP_NS, drive
from repro.switches.registry import switch_names

#: Scenarios the single-run commands (and ``trace``) accept.
_RUN_TARGETS = ("p2p", "p2v", "v2v", "loopback", "v2v-latency")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run one software-switch benchmark on the simulated testbed.",
    )
    parser.add_argument(
        "scenario",
        choices=["p2p", "p2v", "v2v", "loopback", "v2v-latency", "suite", "validate", "campaign", "trace", "perf", "resilience", "flowstats"],
        help="test scenario (Sec. 4 of the paper), 'suite', 'validate', 'campaign', 'trace', 'perf', 'resilience' or 'flowstats'",
    )
    parser.add_argument(
        "target", nargs="?", default=None,
        help="scenario to trace, fault or flow-profile (for 'trace'/"
        "'resilience'/'flowstats'; default p2p)",
    )
    parser.add_argument("--switch", default="vpp", metavar="NAME",
                        help="switch under test (see the registry; default vpp)")
    parser.add_argument("--size", type=int, default=64, help="frame size in bytes")
    parser.add_argument("--bidirectional", action="store_true")
    parser.add_argument("--vnfs", type=int, default=1, help="loopback chain length")
    parser.add_argument("--latency", action="store_true", help="run the R+ latency sweep")
    parser.add_argument("--suite", default="smoke", help="suite name for 'suite'/'campaign'")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--warp", action=argparse.BooleanOptionalAction, default=None,
        help="steady-state fast-forward (default: REPRO_WARP env, on); "
        "results are bit-identical either way",
    )
    parser.add_argument(
        "--fluid", action=argparse.BooleanOptionalAction, default=None,
        help="fluid tier: rate-based extrapolation for long horizons "
        "(default: REPRO_FLUID env, off); approximate within "
        "--fluid-tolerance, changes campaign cache keys",
    )
    parser.add_argument(
        "--fluid-tolerance", type=float, default=None, metavar="REL",
        help="declared max relative error for --fluid (default: "
        "REPRO_FLUID_TOLERANCE env, 0.05)",
    )
    parser.add_argument(
        "--warmup-ns", type=float, default=None, metavar="NS",
        help="override the warm-up window (default: the runner's)",
    )
    parser.add_argument(
        "--measure-ns", type=float, default=None, metavar="NS",
        help="override the measurement window (default: the runner's)",
    )
    # --- traffic diversity (repro.flows) ----------------------------------
    parser.add_argument(
        "--flows", default="1", metavar="N[,N...]",
        help="concurrent flows (k/m suffixes ok, e.g. 100k; a comma list "
        "sweeps the axis, campaign only)",
    )
    parser.add_argument(
        "--flow-dist", choices=["uniform", "zipf"], default="uniform",
        help="per-flow rate distribution (default uniform)",
    )
    parser.add_argument(
        "--churn", type=float, default=0.0, metavar="FPS",
        help="flow churn: fresh flows per second displacing cached ones",
    )
    parser.add_argument(
        "--size-mix", default=None, metavar="NAME",
        help="frame-size mix profile (e.g. imix); sizes are drawn per "
        "packet instead of the fixed --size",
    )
    # --- campaign execution (also honoured by 'suite' and 'validate') -----
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default 1; 0 = one per core)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="replicas per experiment (suite/validate/campaign; needs "
        "--seed-policy when N > 1)",
    )
    parser.add_argument(
        "--seed-policy", choices=["trial", "reseed"], default=None,
        help="how --repeat replicas differ: 'trial' runs soundness trials "
        "(same workload, perturbed measurement phases; campaign adds "
        "CI-converged early stopping and instability quarantine), "
        "'reseed' reseeds the whole workload per replica",
    )
    parser.add_argument(
        "--ci-target", type=float, default=0.05, metavar="F",
        help="trial campaigns: stop adding trials once the bootstrap CI "
        "half-width shrinks below F of the mean (default 0.05)",
    )
    parser.add_argument(
        "--trial-summary", default=None, metavar="PATH",
        help="trial campaigns: write the per-point TrialSummary JSON "
        "artifact (n, CI, instability verdict, quarantine reason)",
    )
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=None,
        help="memoise results under --cache-dir (campaign: on by default)",
    )
    parser.add_argument("--cache-dir", default=".repro-cache", metavar="DIR")
    parser.add_argument(
        "--switches", default=None, metavar="A,B,...",
        help="campaign switch list (default: all seven)",
    )
    parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="campaign JSONL result log (enables --resume)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip runs already completed in --store",
    )
    parser.add_argument("--export-csv", default=None, metavar="PATH")
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-run wall-clock budget in seconds",
    )
    # --- observability (repro.obs) ----------------------------------------
    parser.add_argument(
        "--metrics", action="store_true",
        help="collect metrics; print Prometheus text (or write --metrics-out)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write Prometheus text to PATH instead of stdout",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the cycle-attribution breakdown vs the closed form",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome trace-event JSON (single run: the simulated "
        "testbed; campaign: the execution timeline)",
    )
    parser.add_argument(
        "--sample-rate", type=int, default=None, metavar="N",
        help="per-packet lifecycle spans: trace one batch in N",
    )
    parser.add_argument(
        "--flow-stats", action="store_true",
        help="collect per-flow telemetry (latency/loss/throughput per flow "
        "with heavy-hitter tracking); implied by the 'flowstats' command",
    )
    parser.add_argument(
        "--top-k", type=int, default=None, metavar="K",
        help="flow telemetry: heavy-hitter tracker capacity (default 64); "
        "memory stays O(K) regardless of --flows",
    )
    parser.add_argument(
        "--flow-out", default=None, metavar="PATH",
        help="write per-flow Prometheus text (repro_flow_*) to PATH",
    )
    # --- fault injection ('resilience') -----------------------------------
    parser.add_argument(
        "--fault", action="append", default=None, metavar="KIND@TARGET:at_ns=...",
        help="schedule one fault (repeatable), e.g. "
        "vif-disconnect@vm1.eth0:at_ns=1200000,duration_ns=300000",
    )
    parser.add_argument(
        "--epsilon", type=float, default=None, metavar="F",
        help="resilience: recovered when rate is within F of baseline (default 0.05)",
    )
    parser.add_argument(
        "--bin-ns", type=float, default=None, metavar="NS",
        help="resilience: degradation timeline bin width (default 100000)",
    )
    # --- simulator perf bench ('perf') ------------------------------------
    parser.add_argument(
        "--json", action="store_true",
        help="perf: also write the report JSON to --perf-out",
    )
    parser.add_argument(
        "--perf-out", default="BENCH_pr3.json", metavar="PATH",
        help="perf: report JSON path (with --json; default BENCH_pr3.json)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="perf: baseline JSON for speedup columns "
        "(default benchmarks/perf/baseline_pr3.json)",
    )
    parser.add_argument(
        "--cases", default=None, metavar="A,B,...",
        help="perf: run only these named cases (default: the standard grid; "
        "long-horizon warp cases are opt-in by name or --long-horizon)",
    )
    parser.add_argument(
        "--long-horizon", action="store_true",
        help="perf: include the long-horizon warp A/B cases (10x window)",
    )
    parser.add_argument(
        "--max-regress", type=float, default=None, metavar="PCT",
        help="perf: fail (exit 4) when any case runs more than PCT%% slower "
        "than the --baseline",
    )
    return parser


def _flow_counts(args) -> list[int]:
    """Parse --flows: comma-separated counts with k/m suffixes."""
    counts = []
    for token in str(args.flows).split(","):
        token = token.strip().lower()
        if not token:
            continue
        scale = 1
        if token.endswith("k"):
            scale, token = 1_000, token[:-1]
        elif token.endswith("m"):
            scale, token = 1_000_000, token[:-1]
        counts.append(int(token) * scale)
    return counts or [1]


def _flow_kwargs(args) -> dict:
    """Flow-axis build kwargs; empty at the defaults so single-flow runs
    keep their pre-flow-axis cache keys and golden identity."""
    count = _flow_counts(args)[0]
    kwargs = {}
    if count != 1:
        kwargs["flows"] = count
    if args.flow_dist != "uniform":
        kwargs["flow_dist"] = args.flow_dist
    if args.churn:
        kwargs["churn"] = args.churn
    if args.size_mix is not None:
        kwargs["size_mix"] = args.size_mix
    return kwargs


#: Subcommands the flow-diversity axis reaches end to end.  Every other
#: command rejects non-default flow flags via :func:`_flow_flags_error`
#: instead of silently dropping them somewhere down its pipeline.
_FLOW_COMMANDS = (
    "p2p", "p2v", "v2v", "loopback", "trace", "flowstats", "suite",
    "campaign", "resilience",
)


def _flow_flags_error(args) -> str | None:
    """One validation path for --flows/--flow-dist/--churn/--size-mix.

    Returns the stderr line for invalid flags, or None when this
    subcommand can honour them.  All commands funnel through here, so a
    flag a command cannot carry is a consistent error everywhere.
    """
    try:
        counts = _flow_counts(args)
    except ValueError:
        return f"bad --flows {args.flows!r}: expected counts like 1,1k,100k,1m"
    if len(counts) > 1 and args.scenario != "campaign":
        return "--flows with a comma list sweeps a campaign axis; pick one count here"
    if args.size_mix is not None:
        from repro.traffic.profiles import PROFILES

        if args.size_mix not in PROFILES:
            return f"unknown --size-mix {args.size_mix!r}; known: {sorted(PROFILES)}"
    nondefault = (
        counts != [1]
        or args.flow_dist != "uniform"
        or bool(args.churn)
        or args.size_mix is not None
    )
    if not nondefault:
        return None
    if args.scenario not in _FLOW_COMMANDS:
        return (
            "--flows/--flow-dist/--churn/--size-mix are not supported by "
            f"'{args.scenario}'; flow-aware commands: " + ", ".join(_FLOW_COMMANDS)
        )
    if args.scenario in ("trace", "flowstats") and (args.target or "p2p") == "v2v-latency":
        return (
            "the v2v-latency scenario drives a fixed probe flow; "
            "flow-diversity flags are not supported"
        )
    return None


def _workers(args) -> int | None:
    """CLI convention: unset -> 1 (serial), 0 -> auto-size to the machine."""
    if args.workers is None:
        return 1
    if args.workers == 0:
        return None
    return args.workers


def _windows(args, warmup_default: float = DEFAULT_WARMUP_NS, measure_default: float = DEFAULT_MEASURE_NS) -> dict:
    return {
        "warmup_ns": args.warmup_ns if args.warmup_ns is not None else warmup_default,
        "measure_ns": args.measure_ns if args.measure_ns is not None else measure_default,
    }


def _cache(args, default_on: bool):
    enabled = default_on if args.cache is None else args.cache
    if not enabled:
        return None
    from repro.campaign.cache import ResultCache

    return ResultCache(args.cache_dir)


def _outcome_cells(outcome) -> list:
    """Gbps/Mpps/status cells for one suite experiment outcome."""
    if outcome.status == "inapplicable":
        return ["n/a (qemu)", "n/a (qemu)", "inapplicable"]
    if outcome.status == "failed":
        return ["failed", "failed", f"FAILED: {outcome.detail}"]
    return [round(outcome.gbps, 2), round(outcome.mpps, 2), "ok"]


def _note(message: str) -> None:
    """Telemetry line: stderr, so piped stdout stays parseable."""
    print(message, file=sys.stderr, flush=True)


def _obs_config(args, trace: bool = False, with_trace_out: bool = True, flowstats: bool = False):
    """Build an ObsConfig from the CLI flags; None when nothing was asked."""
    want_trace = trace or (with_trace_out and args.trace_out is not None)
    want_metrics = args.metrics or args.metrics_out is not None
    want_profile = args.profile
    want_flowstats = flowstats or args.flow_stats or args.flow_out is not None
    if not (want_trace or want_metrics or want_profile or want_flowstats):
        return None
    from repro.obs import ObsConfig

    kwargs = {}
    if args.sample_rate is not None:
        kwargs["sample_rate"] = args.sample_rate
    if want_flowstats:
        kwargs["flowstats"] = True
        if args.top_k is not None:
            kwargs["top_k"] = args.top_k
    return ObsConfig(
        trace=want_trace,
        metrics=want_metrics or want_trace,
        profile=want_profile or want_trace,
        **kwargs,
    )


def _profile_table(report, scenario: str, args) -> str:
    """Observed attribution diffed against the closed-form breakdown."""
    from repro.analysis.bottleneck import diff_attribution, stage_breakdown

    observed = report.chain_cycles_per_packet()
    if args.bidirectional:
        # The observed report sums both symmetric directions; the closed
        # form is per direction.
        observed = {stage: value / 2 for stage, value in observed.items()}
    predicted = stage_breakdown(
        args.switch,
        scenario,
        frame_size=args.size,
        bidirectional=args.bidirectional,
        n_vnfs=args.vnfs,
    )
    diff = diff_attribution(observed, predicted)
    rows = [
        [
            stage,
            round(cells["observed"], 1),
            round(cells["predicted"], 1),
            round(cells["delta"], 1),
            f"{cells['ratio']:.2f}x",
        ]
        for stage, cells in diff.items()
    ]
    title = (
        f"cycle attribution, {args.switch} {scenario} {args.size}B "
        f"({report.packets} packets; cycles/packet per direction)"
    )
    return format_table(
        ["stage", "observed", "closed-form", "delta", "ratio"], rows, title=title
    )


def _emit_single_run_obs(
    args, observation, scenario: str, default_trace_out: str | None = None, result=None
) -> None:
    """Print/write whatever artifacts the obs flags asked for."""
    trace_out = args.trace_out or default_trace_out
    if observation.tracer is not None and trace_out:
        path = observation.write_chrome_trace(trace_out)
        _note(
            f"wrote Chrome trace {path} ({len(observation.tracer)} events, "
            f"{observation.tracer.dropped_events} dropped) -- load at ui.perfetto.dev"
        )
    if observation.profiler is not None and (args.profile or args.scenario == "trace"):
        report = observation.profile()
        print(_profile_table(report, scenario, args))
        if result is not None:
            if result.warp is not None:
                print(f"warp: {result.warp.describe()}")
            else:
                print("warp: disabled (REPRO_WARP=0 or --no-warp)")
    if getattr(observation, "flowstats", None) is not None:
        from repro.obs.flowstats import flow_table

        # The flow table moves to stderr when metrics stream to stdout,
        # mirroring the measurement line.
        say = _note if (args.metrics and not args.metrics_out) else print
        say(flow_table(observation.flow_summary()))
        if args.flow_out:
            path = observation.write_flow_prometheus(
                args.flow_out, labels={"scenario": scenario, "switch": args.switch}
            )
            _note(f"wrote per-flow metrics {path}")
    if observation.registry is not None:
        if args.metrics_out:
            path = observation.write_prometheus(args.metrics_out)
            _note(f"wrote Prometheus metrics {path}")
        elif args.metrics:
            print(observation.prometheus_text(), end="")


def _observed_single_run(args) -> int:
    """Single run with the observability layer attached (or 'trace')."""
    from repro.obs import observe

    if args.scenario == "trace":
        scenario = args.target or "p2p"
        if scenario not in _RUN_TARGETS:
            _note(f"unknown trace target {scenario!r}; known: {_RUN_TARGETS}")
            return 1
        config = _obs_config(args, trace=True)
        default_trace_out = "trace.json"
    elif args.scenario == "flowstats":
        scenario = args.target or "p2p"
        if scenario not in _RUN_TARGETS:
            _note(f"unknown flowstats target {scenario!r}; known: {_RUN_TARGETS}")
            return 1
        config = _obs_config(args, flowstats=True)
        default_trace_out = None
    else:
        scenario = args.scenario
        config = _obs_config(args)
        default_trace_out = None
    assert config is not None

    if scenario == "v2v-latency":
        tb = v2v.build_latency(args.switch, frame_size=args.size, seed=args.seed)
        observation = observe(tb, config)
        result = drive(tb, **_windows(args), warp=args.warp)
        bottleneck_scenario = "v2v"
    else:
        builders = {"p2p": p2p.build, "p2v": p2v.build, "v2v": v2v.build, "loopback": loopback.build}
        extra = {"n_vnfs": args.vnfs} if scenario == "loopback" else {}
        extra.update(_flow_kwargs(args))
        tb = builders[scenario](
            args.switch,
            frame_size=args.size,
            bidirectional=args.bidirectional,
            seed=args.seed,
            **extra,
        )
        observation = observe(tb, config)
        result = drive(
            tb, **_windows(args), bidirectional=args.bidirectional, warp=args.warp
        )
        bottleneck_scenario = scenario
    observation.finish(result)

    direction = "bidirectional" if args.bidirectional else "unidirectional"
    summary = (
        f"{scenario} {direction} {args.size}B {args.switch}: "
        f"{result.gbps:.2f} Gbps ({result.mpps:.2f} Mpps)"
    )
    # The measurement line moves to stderr when metrics stream to stdout.
    if args.metrics and not args.metrics_out:
        _note(summary)
    else:
        print(summary)
    _emit_single_run_obs(
        args, observation, bottleneck_scenario, default_trace_out, result=result
    )
    return 0


def _campaign_trace_events(timeline: list[dict]) -> list[dict]:
    """Chrome trace spans for a campaign's execution timeline.

    One span per run (wall-clock seconds mapped onto the trace's ns
    axis), tracked by source so cached/resumed hits sit on their own
    rows next to the executed runs.
    """
    events = []
    for entry in timeline:
        start_s = max(entry["finished_s"] - entry["wall_clock_s"], 0.0)
        events.append(
            {
                "name": entry["label"],
                "ph": "X",
                "cat": "campaign",
                "ts": start_s * 1e9,
                "dur": max(entry["wall_clock_s"], 1e-6) * 1e9,
                "tid": entry["source"],
                "args": {"status": entry["status"], "source": entry["source"]},
            }
        )
    return events


def _run_campaign_command(args) -> int:
    from repro.campaign.executor import run_campaign
    from repro.campaign.progress import ProgressReporter, emit_to_stderr
    from repro.campaign.spec import from_suite
    from repro.campaign.store import CampaignStore, export_csv
    from repro.measure.suites import SUITES

    suite = SUITES.get(args.suite)
    if suite is None:
        print(f"unknown suite {args.suite!r}; known: {sorted(SUITES)}")
        return 1
    if args.switches:
        switches = [name.strip() for name in args.switches.split(",") if name.strip()]
        unknown = sorted(set(switches) - set(switch_names()))
        if unknown:
            print(f"unknown switches {unknown}; known: {sorted(switch_names())}")
            return 1
    else:
        switches = list(switch_names())

    # Trial mode repeats each grid point through the soundness scheduler
    # instead of widening the seed axis, so the base grid is one seed.
    trial_mode = args.seed_policy == "trial"
    spec = from_suite(
        suite,
        switches,
        seeds=range(args.seed, args.seed + (1 if trial_mode else args.repeat)),
        **_windows(args),
    )
    flow_counts = _flow_counts(args)
    if flow_counts != [1] or args.flow_dist != "uniform" or args.churn or args.size_mix:
        variants = [
            spec.with_flows(
                count,
                flow_dist=args.flow_dist,
                churn=args.churn,
                size_mix=args.size_mix,
            )
            for count in flow_counts
        ]
        spec = type(spec)(
            name=spec.name,
            runs=tuple(run for variant in variants for run in variant.runs),
        )
    # Campaign --trace-out traces the campaign's own execution, so it
    # does not switch per-run tracing on.
    obs = _obs_config(args, with_trace_out=False)
    if obs is not None:
        spec = spec.with_obs(obs)
    store = CampaignStore(args.store) if args.store else None
    if trial_mode:
        return _run_trial_campaign(args, spec, suite, switches, store)
    reporter = ProgressReporter(total=len(spec), emit=emit_to_stderr)
    result = run_campaign(
        spec,
        workers=_workers(args),
        cache=_cache(args, default_on=True),
        store=store,
        resume=args.resume,
        progress=reporter,
        timeout_s=args.timeout,
    )

    # Tables/summary stay on stdout unless the CSV streams there.
    csv_to_stdout = args.export_csv == "-"
    say = _note if csv_to_stdout else print
    rows = []
    for key, outcome in result.outcomes:
        if outcome.status == "failed":
            gbps, mpps, status = "failed", "failed", f"FAILED: {outcome.error}: {outcome.message}"
        elif outcome.status == "inapplicable":
            gbps, mpps, status = "n/a (qemu)", "n/a (qemu)", "inapplicable"
        else:
            gbps, mpps = round(outcome.gbps, 2), round(outcome.mpps, 2)
            status = "cached" if outcome.cached else "ok"
        rows.append([outcome.spec.label, gbps, mpps, status])
    say(
        format_table(
            ["run", "Gbps", "Mpps", "status"],
            rows,
            title=f"campaign '{spec.name}': {len(switches)} switches x {len(suite.experiments)} experiments x {args.repeat} seeds",
        )
    )
    say(reporter.summary())
    if args.export_csv:
        path = export_csv(result.outcomes, args.export_csv)
        if path is not None:
            _note(f"wrote {path}")
    if args.metrics_out:
        from repro.obs.exporters import (
            snapshot_prometheus_text,
            warp_decline_prometheus_text,
        )

        snapshots = [
            ({"run": outcome.spec.label}, outcome.metrics["metrics"])
            for _, outcome in result.outcomes
            if getattr(outcome, "metrics", None) and "metrics" in outcome.metrics
        ]
        with open(args.metrics_out, "w") as fh:
            snapshot_prometheus_text(snapshots, fh)
            fh.write(
                warp_decline_prometheus_text(
                    result.outcomes, labels={"campaign": spec.name}
                )
            )
        _note(f"wrote Prometheus metrics {args.metrics_out} ({len(snapshots)} runs)")
    if args.trace_out:
        from repro.obs.exporters import write_chrome_trace

        path = write_chrome_trace(
            args.trace_out,
            _campaign_trace_events(reporter.timeline),
            {"campaign": spec.name, "workers": str(_workers(args) or "auto")},
        )
        _note(f"wrote campaign execution trace {path}")
    if result.interrupted:
        _note(_interrupt_summary(result, len(spec), args))
        return 130
    return 3 if result.failures else 0


def _run_trial_campaign(args, spec, suite, switches, store) -> int:
    """Campaign in soundness-trial mode: repeat scheduler + quarantine.

    Each grid point runs up to ``--repeat`` trials through
    :func:`repro.measure.soundness.run_trial_campaign`, stopping early
    once the bootstrap CI converges (``--ci-target``) and quarantining
    points the instability detector cannot call stable.
    """
    import json

    from repro.campaign.progress import ProgressReporter, emit_to_stderr
    from repro.campaign.store import export_csv
    from repro.measure.soundness import TrialPolicy, run_trial_campaign

    policy = TrialPolicy(
        n_min=min(3, args.repeat),
        n_max=args.repeat,
        rel_ci_target=args.ci_target,
    )
    reporter = ProgressReporter(total=len(spec) * args.repeat, emit=emit_to_stderr)
    result = run_trial_campaign(
        spec.runs,
        policy,
        name=spec.name,
        workers=_workers(args),
        cache=_cache(args, default_on=True),
        store=store,
        progress=reporter,
        timeout_s=args.timeout,
    )

    csv_to_stdout = args.export_csv == "-"
    say = _note if csv_to_stdout else print
    rows = []
    for point in result.points:
        if point.status == "failed":
            rows.append(
                [point.label, "-", "-", "-", "-", "-", f"FAILED: {point.reason}"]
            )
            continue
        if point.status == "inapplicable":
            rows.append([point.label, "-", "-", "-", "-", "-", "inapplicable"])
            continue
        summary = point.summary
        status = f"QUARANTINED: {point.reason}" if point.quarantined else "ok"
        rows.append(
            [
                point.label,
                summary.metric,
                round(summary.mean, 3),
                f"[{summary.ci_low:.3f}, {summary.ci_high:.3f}]",
                summary.n,
                summary.verdict,
                status,
            ]
        )
    say(
        format_table(
            ["run", "metric", "mean", f"{int(policy.ci_level * 100)}% CI", "n", "verdict", "status"],
            rows,
            title=(
                f"trial campaign '{spec.name}': {len(switches)} switches x "
                f"{len(suite.experiments)} experiments, n<={args.repeat} trials "
                f"(CI target {args.ci_target:g})"
            ),
        )
    )
    quarantined = [point for point in result.points if point.quarantined]
    if quarantined:
        say(f"{len(quarantined)} point(s) quarantined as statistically unstable")
    say(reporter.summary())
    if args.trial_summary:
        with open(args.trial_summary, "w") as fh:
            json.dump(result.summary_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        _note(f"wrote trial summary {args.trial_summary}")
    if args.export_csv:
        path = export_csv(result.outcomes, args.export_csv)
        if path is not None:
            _note(f"wrote {path}")
    if args.metrics_out:
        from repro.obs.exporters import write_trial_prometheus

        path = write_trial_prometheus(
            args.metrics_out, result.summary_dict(), labels={"campaign": spec.name}
        )
        _note(f"wrote trial metrics {path}")
    return 3 if result.failures else 0


def _interrupt_summary(result, total: int, args) -> str:
    """One actionable line for a SIGINT/SIGTERM-truncated campaign."""
    outstanding = total - len(result.outcomes)
    message = (
        f"campaign interrupted: {len(result.outcomes)}/{total} runs finished, "
        f"{outstanding} outstanding"
    )
    if args.store:
        message += f"; resume with --store {args.store} --resume"
    else:
        message += "; rerun with --store PATH to make interrupted campaigns resumable"
    return message


def _run_resilience_command(args) -> int:
    """Fault-injection campaign: grid x fault plan, recovery metrics out."""
    from repro.campaign.executor import run_campaign
    from repro.campaign.progress import ProgressReporter, emit_to_stderr
    from repro.campaign.spec import SCENARIOS, grid
    from repro.campaign.store import CampaignStore, export_csv
    from repro.faults import FaultPlan, parse_fault

    scenario = args.target or "p2p"
    if scenario not in SCENARIOS:
        _note(
            f"unknown resilience scenario {scenario!r}; valid scenarios: "
            + ", ".join(SCENARIOS)
        )
        return 1
    if not args.fault:
        _note(
            "resilience needs at least one --fault KIND@TARGET:at_ns=...[,duration_ns=...]"
            " (see docs/robustness.md for kinds and targets)"
        )
        return 1
    try:
        plan = FaultPlan.of(*(parse_fault(text) for text in args.fault))
    except ValueError as exc:
        _note(f"bad --fault: {exc}")
        return 1

    if args.switches:
        switches = [name.strip() for name in args.switches.split(",") if name.strip()]
        unknown = sorted(set(switches) - set(switch_names()))
        if unknown:
            _note(
                f"unknown switches {unknown}; valid switches: "
                + ", ".join(sorted(switch_names()))
            )
            return 1
    else:
        switches = [args.switch]

    spec = grid(
        name=f"resilience-{scenario}",
        switches=switches,
        scenarios=(scenario,),
        frame_sizes=(args.size,),
        directions=(args.bidirectional,),
        vnfs=(args.vnfs,),
        seeds=range(args.seed, args.seed + args.repeat),
        fault_plans=(plan,),
        flows=(_flow_counts(args)[0],),
        flow_dist=args.flow_dist,
        churn=args.churn,
        size_mix=args.size_mix,
        **_windows(args),
    )
    if args.epsilon is not None or args.bin_ns is not None:
        from dataclasses import replace

        extra = {}
        if args.epsilon is not None:
            extra["epsilon"] = args.epsilon
        if args.bin_ns is not None:
            extra["bin_ns"] = args.bin_ns
        items = tuple(sorted(extra.items()))
        spec = type(spec)(
            name=spec.name,
            runs=tuple(replace(run, extra=run.extra + items) for run in spec.runs),
        )
    obs = _obs_config(args, with_trace_out=False)
    if obs is not None:
        spec = spec.with_obs(obs)

    store = CampaignStore(args.store) if args.store else None
    reporter = ProgressReporter(total=len(spec), emit=emit_to_stderr)
    result = run_campaign(
        spec,
        workers=_workers(args),
        cache=_cache(args, default_on=False),
        store=store,
        resume=args.resume,
        progress=reporter,
        timeout_s=args.timeout,
    )

    csv_to_stdout = args.export_csv == "-"
    say = _note if csv_to_stdout else print
    rows = []
    for _, outcome in result.outcomes:
        if outcome.status == "failed":
            rows.append([outcome.spec.label, "failed", "-", "-", "-", f"FAILED: {outcome.error}"])
            continue
        report = getattr(outcome, "resilience", None) or {}
        ttr = report.get("time_to_recover_ns")
        rows.append(
            [
                outcome.spec.label,
                round(report.get("pre_fault_pps", 0.0) / 1e6, 3),
                round(report.get("loss_during_fault_frames", 0.0), 1),
                f"{ttr / 1e3:.0f} us" if ttr is not None else "never",
                "yes" if report.get("recovered") else "NO",
                "ok",
            ]
        )
    fault_labels = ", ".join(event.label for event in plan)
    say(
        format_table(
            ["run", "pre-fault Mpps", "loss (frames)", "TTR", "recovered", "status"],
            rows,
            title=f"resilience '{scenario}' under [{fault_labels}]",
        )
    )
    say(reporter.summary())
    if args.export_csv:
        path = export_csv(result.outcomes, args.export_csv)
        if path is not None:
            _note(f"wrote {path}")
    if result.interrupted:
        _note(_interrupt_summary(result, len(spec), args))
        return 130
    return 3 if result.failures else 0


def _run_perf_command(args) -> int:
    """Simulator micro-benchmarks: events/sec and sim-Mpps per wall-second."""
    import json

    from repro.bench.perf import (
        ALL_CASES,
        PERF_CASES,
        format_report,
        perf_regressions,
        run_perf,
    )

    cases = ALL_CASES if args.long_horizon else PERF_CASES
    if args.cases:
        want = {name.strip() for name in args.cases.split(",") if name.strip()}
        unknown = sorted(want - {case.name for case in ALL_CASES})
        if unknown:
            print(f"unknown perf cases {unknown}; known: {[c.name for c in ALL_CASES]}")
            return 1
        cases = tuple(case for case in ALL_CASES if case.name in want)
    # --repeat defaults to 1 for suites; the bench wants a few samples to
    # find the noise-free minimum, so treat the default as "3".
    repeat = args.repeat if args.repeat > 1 else 3
    report = run_perf(
        repeat=repeat,
        cases=cases,
        baseline_path=args.baseline,
        progress=lambda msg: _note(f"[perf] {msg}"),
    )
    print(format_report(report))
    if args.json:
        with open(args.perf_out, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
        _note(f"wrote {args.perf_out}")
    if args.max_regress is not None:
        regressions = perf_regressions(report, args.max_regress)
        if regressions is None:
            _note("perf gate: no baseline to compare against; failing closed")
            return 4
        if regressions:
            for name, ratio in regressions:
                _note(
                    f"perf gate: {name} regressed to x{ratio:.2f} of baseline "
                    f"(floor x{1.0 - args.max_regress / 100.0:.2f})"
                )
            return 4
        _note(
            f"perf gate: {len(report.get('speedup', {}))} cases within "
            f"{args.max_regress:g}% of baseline"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    builders = {"p2p": p2p.build, "p2v": p2v.build, "v2v": v2v.build, "loopback": loopback.build}

    if args.switch not in switch_names():
        _note(
            f"unknown switch {args.switch!r}; valid switches: "
            + ", ".join(sorted(switch_names()))
        )
        return 1

    error = _flow_flags_error(args)
    if error is not None:
        _note(error)
        return 1

    # --fluid/--fluid-tolerance flow through the environment so every
    # execution path (single runs, campaign workers, sweeps) and the
    # campaign cache fingerprint (engine_features) see one consistent
    # setting without threading a kwarg through each call chain.
    if args.fluid is not None:
        os.environ["REPRO_FLUID"] = "1" if args.fluid else "0"
    if args.fluid_tolerance is not None:
        if args.fluid_tolerance <= 0:
            _note("--fluid-tolerance must be positive")
            return 1
        os.environ["REPRO_FLUID_TOLERANCE"] = repr(args.fluid_tolerance)

    # One --repeat semantics for the statistical commands: repeating
    # without stating how replicas differ would silently pick one
    # arbitrary interpretation, so it is a loud error (perf is exempt --
    # its repeats are wall-clock samples of the same computation).
    _TRIAL_COMMANDS = ("suite", "validate", "campaign")
    if args.seed_policy is not None and args.scenario not in _TRIAL_COMMANDS:
        _note(
            f"--seed-policy is not supported by '{args.scenario}'; "
            "replica-aware commands: " + ", ".join(_TRIAL_COMMANDS)
        )
        return 1
    if args.repeat > 1 and args.scenario in _TRIAL_COMMANDS and args.seed_policy is None:
        _note(
            "--repeat > 1 is ambiguous without --seed-policy: pass "
            "--seed-policy trial (soundness trials: same workload, "
            "perturbed measurement phases, CI-converged early stopping) "
            "or --seed-policy reseed (whole-workload reseeds, the legacy "
            "consecutive-seed replicas)"
        )
        return 2

    if args.scenario == "perf":
        return _run_perf_command(args)

    if args.scenario == "campaign":
        return _run_campaign_command(args)

    if args.scenario == "resilience":
        return _run_resilience_command(args)

    if args.scenario in ("trace", "flowstats"):
        return _observed_single_run(args)

    if args.scenario == "validate":
        from repro.analysis.validate import summarize, validate

        window_overrides = {}
        if args.warmup_ns is not None:
            window_overrides["warmup_ns"] = args.warmup_ns
        if args.measure_ns is not None:
            window_overrides["measure_ns"] = args.measure_ns
        metrics_sink: dict = {}
        checks = validate(
            progress=lambda msg: _note(f"[validate] {msg}"),
            seed=args.seed,
            workers=_workers(args),
            cache=_cache(args, default_on=False),
            obs=_obs_config(args, with_trace_out=False),
            metrics_sink=metrics_sink,
            repeat=args.repeat,
            seed_policy=args.seed_policy,
            **window_overrides,
        )
        if args.metrics_out and metrics_sink:
            from repro.obs.exporters import snapshot_prometheus_text

            snapshots = [
                ({"run": label}, snapshot["metrics"])
                for label, snapshot in metrics_sink.items()
                if "metrics" in snapshot
            ]
            with open(args.metrics_out, "w") as fh:
                snapshot_prometheus_text(snapshots, fh)
            _note(f"wrote Prometheus metrics {args.metrics_out} ({len(snapshots)} runs)")
        rows = [
            [
                check.artifact,
                check.name,
                check.measured,
                check.expected,
                "PASS" if check.passed else "FAIL",
            ]
            for check in checks
        ]
        print(
            format_table(
                ["artifact", "criterion", "measured", "paper", "verdict"],
                rows,
                title="Reproduction validation",
            )
        )
        passed, total = summarize(checks)
        print(f"\n{passed}/{total} criteria satisfied")
        return 0 if passed == total else 2

    if args.scenario == "suite":
        from repro.campaign.progress import ProgressReporter, emit_to_stderr
        from repro.measure.suites import SUITES

        suite = SUITES.get(args.suite)
        if suite is None:
            print(f"unknown suite {args.suite!r}; known: {sorted(SUITES)}")
            return 1
        flow_kwargs = _flow_kwargs(args)
        outcomes = suite.run_outcomes(
            args.switch,
            seed=args.seed,
            repeat=args.repeat,
            seed_policy=args.seed_policy,
            workers=_workers(args),
            cache=_cache(args, default_on=False),
            progress=ProgressReporter(
                total=len(suite.experiments) * args.repeat, emit=emit_to_stderr
            ),
            # An active flow population switches flow telemetry on so the
            # table can show cache hit-rate and fairness per experiment.
            obs=_obs_config(args, with_trace_out=False, flowstats=bool(flow_kwargs)),
            **flow_kwargs,
            **_windows(args),
        )
        trial_cols = args.repeat > 1
        headers = ["experiment", "Gbps", "Mpps", "status"]
        if flow_kwargs:
            headers = ["experiment", "Gbps", "Mpps", "hit-rate", "jain", "status"]
        if trial_cols:
            headers[-1:-1] = ["n", "CI±", "verdict"]
        rows = []
        for name, outcome in outcomes.items():
            cells = _outcome_cells(outcome)
            if flow_kwargs:
                hit, jain = outcome.cache_hit_rate, outcome.jain
                cells[2:2] = [
                    f"{hit:.3f}" if hit is not None else "-",
                    f"{jain:.3f}" if jain is not None else "-",
                ]
            if trial_cols:
                summary = outcome.trial_summary()
                cells[-1:-1] = (
                    [summary.n, f"±{summary.half_width:.3f}", summary.verdict]
                    if summary is not None
                    else ["-", "-", "-"]
                )
            rows.append([name, *cells])
        print(
            format_table(
                headers,
                rows,
                title=f"suite '{suite.name}' for {args.switch}: {suite.description}",
            )
        )
        return 0

    if args.scenario == "v2v-latency":
        if _obs_config(args) is not None:
            return _observed_single_run(args)
        tb = v2v.build_latency(args.switch, frame_size=args.size, seed=args.seed)
        result = drive(tb, **_windows(args), warp=args.warp)
        latency = result.latency
        mean = latency.mean_us if latency is not None and len(latency) else float("nan")
        std = latency.std_us if latency is not None and len(latency) else float("nan")
        print(f"v2v RTT latency for {args.switch}: mean={mean:.1f} us std={std:.1f} us")
        return 0

    build = builders[args.scenario]
    extra = {"n_vnfs": args.vnfs} if args.scenario == "loopback" else {}
    extra.update(_flow_kwargs(args))

    if not args.latency and _obs_config(args) is not None:
        return _observed_single_run(args)

    if args.latency:
        if _obs_config(args) is not None:
            _note("note: --metrics/--profile/--trace-out/--flow-stats are ignored for the latency sweep")
        sweep_windows = {}
        if args.warmup_ns is not None:
            sweep_windows["warmup_ns"] = args.warmup_ns
        if args.measure_ns is not None:
            sweep_windows["measure_ns"] = args.measure_ns
        points = latency_sweep(
            build, args.switch, frame_size=args.size, seed=args.seed,
            cache=_cache(args, default_on=False),
            **sweep_windows, **extra,
        )
        rows = [
            (f"{fraction:.2f} R+", point.mean_us, point.std_us, len(point.sample))
            for fraction, point in sorted(points.items())
        ]
        print(
            format_table(
                ["load", "mean RTT (us)", "std (us)", "probes"],
                rows,
                title=f"{args.scenario} latency, {args.switch}, {args.size}B",
            )
        )
        return 0

    result = measure_throughput(
        build,
        args.switch,
        frame_size=args.size,
        bidirectional=args.bidirectional,
        seed=args.seed,
        warp=args.warp,
        **_windows(args),
        **extra,
    )
    direction = "bidirectional" if args.bidirectional else "unidirectional"
    print(
        f"{args.scenario} {direction} {args.size}B {args.switch}: "
        f"{result.gbps:.2f} Gbps ({result.mpps:.2f} Mpps)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
