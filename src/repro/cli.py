"""Command-line entry point: run one experiment from a shell.

Examples::

    repro-bench p2p --switch vpp --size 64 --bidirectional
    repro-bench loopback --switch vale --vnfs 3 --size 1024
    repro-bench p2p --switch bess --latency
    repro-bench v2v-latency --switch snabb
    repro-bench suite --switch vpp --suite smoke --workers 4
    repro-bench validate --workers 4 --cache
    repro-bench campaign --suite paper --workers 4 --repeat 3 \\
        --store paper.jsonl --export-csv paper.csv
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import format_table
from repro.measure.latency import latency_sweep
from repro.measure.throughput import measure_throughput
from repro.scenarios import loopback, p2p, p2v, v2v
from repro.measure.runner import DEFAULT_MEASURE_NS, DEFAULT_WARMUP_NS, drive
from repro.switches.registry import switch_names


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run one software-switch benchmark on the simulated testbed.",
    )
    parser.add_argument(
        "scenario",
        choices=["p2p", "p2v", "v2v", "loopback", "v2v-latency", "suite", "validate", "campaign"],
        help="test scenario (Sec. 4 of the paper), 'suite', 'validate' or 'campaign'",
    )
    parser.add_argument("--switch", default="vpp", choices=sorted(switch_names()))
    parser.add_argument("--size", type=int, default=64, help="frame size in bytes")
    parser.add_argument("--bidirectional", action="store_true")
    parser.add_argument("--vnfs", type=int, default=1, help="loopback chain length")
    parser.add_argument("--latency", action="store_true", help="run the R+ latency sweep")
    parser.add_argument("--suite", default="smoke", help="suite name for 'suite'/'campaign'")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--warmup-ns", type=float, default=None, metavar="NS",
        help="override the warm-up window (default: the runner's)",
    )
    parser.add_argument(
        "--measure-ns", type=float, default=None, metavar="NS",
        help="override the measurement window (default: the runner's)",
    )
    # --- campaign execution (also honoured by 'suite' and 'validate') -----
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default 1; 0 = one per core)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="seed replicas per experiment (suite/campaign)",
    )
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=None,
        help="memoise results under --cache-dir (campaign: on by default)",
    )
    parser.add_argument("--cache-dir", default=".repro-cache", metavar="DIR")
    parser.add_argument(
        "--switches", default=None, metavar="A,B,...",
        help="campaign switch list (default: all seven)",
    )
    parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="campaign JSONL result log (enables --resume)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip runs already completed in --store",
    )
    parser.add_argument("--export-csv", default=None, metavar="PATH")
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-run wall-clock budget in seconds",
    )
    return parser


def _workers(args) -> int | None:
    """CLI convention: unset -> 1 (serial), 0 -> auto-size to the machine."""
    if args.workers is None:
        return 1
    if args.workers == 0:
        return None
    return args.workers


def _windows(args, warmup_default: float = DEFAULT_WARMUP_NS, measure_default: float = DEFAULT_MEASURE_NS) -> dict:
    return {
        "warmup_ns": args.warmup_ns if args.warmup_ns is not None else warmup_default,
        "measure_ns": args.measure_ns if args.measure_ns is not None else measure_default,
    }


def _cache(args, default_on: bool):
    enabled = default_on if args.cache is None else args.cache
    if not enabled:
        return None
    from repro.campaign.cache import ResultCache

    return ResultCache(args.cache_dir)


def _outcome_cells(outcome) -> list:
    """Gbps/Mpps/status cells for one suite experiment outcome."""
    if outcome.status == "inapplicable":
        return ["n/a (qemu)", "n/a (qemu)", "inapplicable"]
    if outcome.status == "failed":
        return ["failed", "failed", f"FAILED: {outcome.detail}"]
    return [round(outcome.gbps, 2), round(outcome.mpps, 2), "ok"]


def _run_campaign_command(args) -> int:
    from repro.campaign.executor import run_campaign
    from repro.campaign.progress import ProgressReporter
    from repro.campaign.spec import from_suite
    from repro.campaign.store import CampaignStore, export_csv
    from repro.measure.suites import SUITES

    suite = SUITES.get(args.suite)
    if suite is None:
        print(f"unknown suite {args.suite!r}; known: {sorted(SUITES)}")
        return 1
    if args.switches:
        switches = [name.strip() for name in args.switches.split(",") if name.strip()]
        unknown = sorted(set(switches) - set(switch_names()))
        if unknown:
            print(f"unknown switches {unknown}; known: {sorted(switch_names())}")
            return 1
    else:
        switches = list(switch_names())

    spec = from_suite(
        suite,
        switches,
        seeds=range(args.seed, args.seed + args.repeat),
        **_windows(args),
    )
    store = CampaignStore(args.store) if args.store else None
    reporter = ProgressReporter(total=len(spec), emit=print)
    result = run_campaign(
        spec,
        workers=_workers(args),
        cache=_cache(args, default_on=True),
        store=store,
        resume=args.resume,
        progress=reporter,
        timeout_s=args.timeout,
    )

    rows = []
    for key, outcome in result.outcomes:
        if outcome.status == "failed":
            gbps, mpps, status = "failed", "failed", f"FAILED: {outcome.error}: {outcome.message}"
        elif outcome.status == "inapplicable":
            gbps, mpps, status = "n/a (qemu)", "n/a (qemu)", "inapplicable"
        else:
            gbps, mpps = round(outcome.gbps, 2), round(outcome.mpps, 2)
            status = "cached" if outcome.cached else "ok"
        rows.append([outcome.spec.label, gbps, mpps, status])
    print(
        format_table(
            ["run", "Gbps", "Mpps", "status"],
            rows,
            title=f"campaign '{spec.name}': {len(switches)} switches x {len(suite.experiments)} experiments x {args.repeat} seeds",
        )
    )
    print(reporter.summary())
    if args.export_csv:
        path = export_csv(result.outcomes, args.export_csv)
        print(f"wrote {path}")
    return 3 if result.failures else 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    builders = {"p2p": p2p.build, "p2v": p2v.build, "v2v": v2v.build, "loopback": loopback.build}

    if args.scenario == "campaign":
        return _run_campaign_command(args)

    if args.scenario == "validate":
        from repro.analysis.validate import summarize, validate

        window_overrides = {}
        if args.warmup_ns is not None:
            window_overrides["warmup_ns"] = args.warmup_ns
        if args.measure_ns is not None:
            window_overrides["measure_ns"] = args.measure_ns
        checks = validate(
            progress=lambda msg: print(f"[validate] {msg}"),
            seed=args.seed,
            workers=_workers(args),
            cache=_cache(args, default_on=False),
            **window_overrides,
        )
        rows = [
            [
                check.artifact,
                check.name,
                check.measured,
                check.expected,
                "PASS" if check.passed else "FAIL",
            ]
            for check in checks
        ]
        print(
            format_table(
                ["artifact", "criterion", "measured", "paper", "verdict"],
                rows,
                title="Reproduction validation",
            )
        )
        passed, total = summarize(checks)
        print(f"\n{passed}/{total} criteria satisfied")
        return 0 if passed == total else 2

    if args.scenario == "suite":
        from repro.measure.suites import SUITES

        suite = SUITES.get(args.suite)
        if suite is None:
            print(f"unknown suite {args.suite!r}; known: {sorted(SUITES)}")
            return 1
        outcomes = suite.run_outcomes(
            args.switch,
            seed=args.seed,
            repeat=args.repeat,
            workers=_workers(args),
            cache=_cache(args, default_on=False),
            **_windows(args),
        )
        rows = [
            [name, *_outcome_cells(outcome)]
            for name, outcome in outcomes.items()
        ]
        print(
            format_table(
                ["experiment", "Gbps", "Mpps", "status"],
                rows,
                title=f"suite '{suite.name}' for {args.switch}: {suite.description}",
            )
        )
        return 0

    if args.scenario == "v2v-latency":
        tb = v2v.build_latency(args.switch, frame_size=args.size, seed=args.seed)
        result = drive(tb, **_windows(args))
        latency = result.latency
        mean = latency.mean_us if latency is not None and len(latency) else float("nan")
        std = latency.std_us if latency is not None and len(latency) else float("nan")
        print(f"v2v RTT latency for {args.switch}: mean={mean:.1f} us std={std:.1f} us")
        return 0

    build = builders[args.scenario]
    extra = {"n_vnfs": args.vnfs} if args.scenario == "loopback" else {}

    if args.latency:
        sweep_windows = {}
        if args.warmup_ns is not None:
            sweep_windows["warmup_ns"] = args.warmup_ns
        if args.measure_ns is not None:
            sweep_windows["measure_ns"] = args.measure_ns
        points = latency_sweep(
            build, args.switch, frame_size=args.size, seed=args.seed,
            **sweep_windows, **extra,
        )
        rows = [
            (f"{fraction:.2f} R+", point.mean_us, point.std_us, len(point.sample))
            for fraction, point in sorted(points.items())
        ]
        print(
            format_table(
                ["load", "mean RTT (us)", "std (us)", "probes"],
                rows,
                title=f"{args.scenario} latency, {args.switch}, {args.size}B",
            )
        )
        return 0

    result = measure_throughput(
        build,
        args.switch,
        frame_size=args.size,
        bidirectional=args.bidirectional,
        seed=args.seed,
        **_windows(args),
        **extra,
    )
    direction = "bidirectional" if args.bidirectional else "unidirectional"
    print(
        f"{args.scenario} {direction} {args.size}B {args.switch}: "
        f"{result.gbps:.2f} Gbps ({result.mpps:.2f} Mpps)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
