"""Performance benchmarking of the simulator itself.

The measurement campaigns (suites, validation grids, campaigns) are
bounded by raw simulator throughput -- the same cycles/packet economics
the source paper studies in the switches.  :mod:`repro.bench.perf` is the
micro-benchmark harness that tracks it: engine events per wall-second and
simulated Mpps per wall-second on the tier-1 scenarios.
"""

from repro.bench.perf import PERF_CASES, run_perf

__all__ = ["PERF_CASES", "run_perf"]
