"""Simulator micro-benchmarks: events/sec and simulated-Mpps per wall-second.

Two kinds of cases:

* **engine** -- a bare self-re-arming event loop, measuring raw dispatch
  throughput of :class:`~repro.core.engine.Simulator` (events per
  wall-second);
* **scenario** -- a tier-1 testbed (p2p / p2v / v2v / loopback) driven
  through the standard warm-up + measurement windows, measuring how many
  simulated packets the simulator moves per wall-second.

Each case is repeated ``repeat`` times and the *minimum* wall time is
reported (the minimum is the noise-free cost; everything above it is
scheduler jitter).  Same-process A/B pairs (``.nowarp``/``.warp``,
``.exact``/``.fluid``) interleave their repeats -- A, B, A, B, ... --
so both sides sample the same host-load conditions; minima taken
minutes apart let a transient spike land on one side only and skew the
reported ratio.  ``run_perf`` compares against a committed baseline
JSON (``benchmarks/perf/baseline_pr3.json`` holds the pre-flyweight seed
numbers) and reports per-case speedups; :func:`perf_regressions` turns
that comparison into a CI gate (``repro-bench perf --max-regress 20``
exits non-zero when any case runs >20% slower than its baseline).

``WARP_CASES`` are the long-horizon acceptance pairs for the
steady-state fast-forward (:mod:`repro.core.warp`): a 10x measurement
window at a paced sub-capacity load, driven once with warp pinned off
and once pinned on, reported as ``warp_speedup`` (the wall-clock ratio;
results are verified bit-identical elsewhere, this bench only times).

CLI entry point: ``repro-bench perf --json`` (writes ``BENCH_pr3.json``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.engine import Simulator
from repro.measure.runner import DEFAULT_MEASURE_NS, DEFAULT_WARMUP_NS, drive

#: Committed pre-change baseline (seed-era numbers) for speedup reporting.
DEFAULT_BASELINE = Path(__file__).resolve().parents[3] / "benchmarks" / "perf" / "baseline_pr3.json"


@dataclass(frozen=True)
class PerfCase:
    """One micro-benchmark: a bare engine loop or a tier-1 scenario."""

    name: str
    kind: str  # "engine" | "scenario" | "resilience"
    scenario: str = ""
    switch: str = ""
    frame_size: int = 64
    bidirectional: bool = False
    #: offered rate for paced sources (None = saturating input).
    rate_pps: float | None = None
    #: measurement-window multiplier (long-horizon cases use 10x).
    measure_scale: float = 1.0
    #: pin the steady-state fast-forward (None follows REPRO_WARP).
    warp: bool | None = None
    #: pin the fluid tier (None follows REPRO_FLUID, default off).
    fluid: bool | None = None
    #: extra build kwargs as sorted items (e.g. the repro.flows axis:
    #: ``(("flow_dist", "zipf"), ("flows", 100_000))``).
    extra: tuple = ()


#: The standard grid: engine dispatch plus the tier-1 scenario hot paths.
#: p2p and v2v at 64 B are the acceptance cases (saturating streams of
#: minimum-size frames -- the paper's hardest workload).
PERF_CASES: tuple[PerfCase, ...] = (
    PerfCase("engine.dispatch", "engine"),
    PerfCase("p2p.ovs-dpdk.64", "scenario", "p2p", "ovs-dpdk"),
    PerfCase("p2p.vpp.64", "scenario", "p2p", "vpp"),
    PerfCase("p2p.vale.64", "scenario", "p2p", "vale"),
    PerfCase("p2v.ovs-dpdk.64", "scenario", "p2v", "ovs-dpdk"),
    PerfCase("v2v.ovs-dpdk.64", "scenario", "v2v", "ovs-dpdk"),
    PerfCase("v2v.vale.64", "scenario", "v2v", "vale"),
    PerfCase("loopback.vpp.64", "scenario", "loopback", "vpp"),
    PerfCase(
        "p2p.ovs-dpdk.64.100kflows", "scenario", "p2p", "ovs-dpdk",
        extra=(("flow_dist", "zipf"), ("flows", 100_000)),
    ),
)

#: Long-horizon warp acceptance cases: a 10x measurement window at an
#: NDR-trial-style sub-capacity offered load (the workload class where a
#: rate search or latency sweep burns most of its wall clock).  Each
#: scenario appears twice -- warp pinned off (the event-by-event cost)
#: and warp pinned on -- so the report's ``warp_speedup`` section is a
#: same-process A/B, not a cross-machine comparison.
LONG_HORIZON_RATE_PPS = 3_000_000.0
LONG_HORIZON_SCALE = 10.0
WARP_CASES: tuple[PerfCase, ...] = (
    PerfCase(
        "longh.p2p.ovs-dpdk.nowarp", "scenario", "p2p", "ovs-dpdk",
        rate_pps=LONG_HORIZON_RATE_PPS, measure_scale=LONG_HORIZON_SCALE, warp=False,
    ),
    PerfCase(
        "longh.p2p.ovs-dpdk.warp", "scenario", "p2p", "ovs-dpdk",
        rate_pps=LONG_HORIZON_RATE_PPS, measure_scale=LONG_HORIZON_SCALE, warp=True,
    ),
    PerfCase(
        "longh.p2p.vpp.nowarp", "scenario", "p2p", "vpp",
        rate_pps=LONG_HORIZON_RATE_PPS, measure_scale=LONG_HORIZON_SCALE, warp=False,
    ),
    PerfCase(
        "longh.p2p.vpp.warp", "scenario", "p2p", "vpp",
        rate_pps=LONG_HORIZON_RATE_PPS, measure_scale=LONG_HORIZON_SCALE, warp=True,
    ),
    # Multi-hop shapes the chain turbo covers: bidirectional p2p, the
    # vring hops (p2v/v2v) and a loopback VNF chain, each at an NDR-style
    # sub-capacity load over the 10x window.
    PerfCase(
        "longh.p2p-bidi.vpp.nowarp", "scenario", "p2p", "vpp", bidirectional=True,
        rate_pps=2_000_000.0, measure_scale=LONG_HORIZON_SCALE, warp=False,
    ),
    PerfCase(
        "longh.p2p-bidi.vpp.warp", "scenario", "p2p", "vpp", bidirectional=True,
        rate_pps=2_000_000.0, measure_scale=LONG_HORIZON_SCALE, warp=True,
    ),
    PerfCase(
        "longh.p2v.ovs-dpdk.nowarp", "scenario", "p2v", "ovs-dpdk",
        rate_pps=1_000_000.0, measure_scale=LONG_HORIZON_SCALE, warp=False,
    ),
    PerfCase(
        "longh.p2v.ovs-dpdk.warp", "scenario", "p2v", "ovs-dpdk",
        rate_pps=1_000_000.0, measure_scale=LONG_HORIZON_SCALE, warp=True,
    ),
    PerfCase(
        "longh.v2v.vpp.nowarp", "scenario", "v2v", "vpp",
        rate_pps=800_000.0, measure_scale=LONG_HORIZON_SCALE, warp=False,
    ),
    PerfCase(
        "longh.v2v.vpp.warp", "scenario", "v2v", "vpp",
        rate_pps=800_000.0, measure_scale=LONG_HORIZON_SCALE, warp=True,
    ),
    PerfCase(
        "longh.loopback2.vpp.nowarp", "scenario", "loopback", "vpp",
        rate_pps=500_000.0, measure_scale=LONG_HORIZON_SCALE, warp=False,
        extra=(("n_vnfs", 2),),
    ),
    PerfCase(
        "longh.loopback2.vpp.warp", "scenario", "loopback", "vpp",
        rate_pps=500_000.0, measure_scale=LONG_HORIZON_SCALE, warp=True,
        extra=(("n_vnfs", 2),),
    ),
)

#: Between-fault warp acceptance: a resilience run (two NIC link flaps
#: over a 30x window) driven event-by-event and with the chain turbo
#: warping the idle stretches between fault instants.  The recovery
#: timeline is verified bit-identical elsewhere (property tests); this
#: bench only times the A/B.  The offered rate sits well under capacity
#: so the inter-fault spans are idle-poll-dominated -- the regime the
#: turbo exists for (fault soak tests trickle traffic while waiting).
RESILIENCE_SCALE = 30.0
RESILIENCE_RATE_PPS = 1_000_000.0
RESILIENCE_CASES: tuple[PerfCase, ...] = (
    PerfCase(
        "longh.resil.p2p.vpp.nowarp", "resilience", "p2p", "vpp",
        rate_pps=RESILIENCE_RATE_PPS, measure_scale=RESILIENCE_SCALE, warp=False,
    ),
    PerfCase(
        "longh.resil.p2p.vpp.warp", "resilience", "p2p", "vpp",
        rate_pps=RESILIENCE_RATE_PPS, measure_scale=RESILIENCE_SCALE, warp=True,
    ),
)

#: Fluid-tier acceptance: a 500x window (1.5 s simulated -- the regime
#: of hour-scale NDR trials, scaled to CI budgets) where the exact side
#: runs the best exact tier and the fluid side extrapolates past an
#: 8 ms calibration slice.  Reported as ``fluid_speedup``; the relative
#: error is gated by tools/fluid_check.py, this bench only times.
FLUID_SCALE = 500.0
FLUID_CASES: tuple[PerfCase, ...] = (
    PerfCase(
        "longh.fluid.p2p.vpp.exact", "scenario", "p2p", "vpp",
        rate_pps=LONG_HORIZON_RATE_PPS, measure_scale=FLUID_SCALE,
        warp=True, fluid=False,
    ),
    PerfCase(
        "longh.fluid.p2p.vpp.fluid", "scenario", "p2p", "vpp",
        rate_pps=LONG_HORIZON_RATE_PPS, measure_scale=FLUID_SCALE,
        warp=True, fluid=True,
    ),
)

#: Million-flow long-horizon datapoint: a Zipf population two orders of
#: magnitude past the EMC's 8K entries over a 10x window -- the flow-cache
#: thrash regime at the scale the subsystem is named for.  Warp correctly
#: declines multi-flow traffic, so this rides the event-by-event path;
#: the report row carries the switch's cache counters (hit rates).
FLOW_LONG_CASES: tuple[PerfCase, ...] = (
    PerfCase(
        "longh.p2p.ovs-dpdk.1mflows", "scenario", "p2p", "ovs-dpdk",
        rate_pps=LONG_HORIZON_RATE_PPS, measure_scale=LONG_HORIZON_SCALE,
        extra=(("flow_dist", "zipf"), ("flows", 1_000_000)),
    ),
)

#: Everything: the standard grid plus the long-horizon A/B pairs.
ALL_CASES: tuple[PerfCase, ...] = (
    PERF_CASES + WARP_CASES + RESILIENCE_CASES + FLUID_CASES + FLOW_LONG_CASES
)

#: Engine case: enough events that interpreter warm-up amortises away.
ENGINE_EVENTS = 100_000


def _bench_engine(n_events: int = ENGINE_EVENTS) -> dict[str, Any]:
    sim = Simulator()

    def rearm() -> None:
        if sim.events_executed < n_events:
            sim.after(1.0, rearm)

    sim.after(0.0, rearm)
    start = time.perf_counter()
    sim.run_until(float(n_events + 2))
    wall = time.perf_counter() - start
    return {
        "events": sim.events_executed,
        "wall_s": wall,
        "events_per_sec": sim.events_executed / wall if wall else float("inf"),
    }


def _build_testbed(case: PerfCase):
    from repro.scenarios import loopback, p2p, p2v, v2v

    builders = {"p2p": p2p.build, "p2v": p2v.build, "v2v": v2v.build, "loopback": loopback.build}
    kwargs: dict[str, Any] = dict(case.extra)
    if case.rate_pps is not None:
        kwargs["rate_pps"] = case.rate_pps
    return builders[case.scenario](
        case.switch, frame_size=case.frame_size, bidirectional=case.bidirectional, **kwargs
    )


def _bench_scenario(
    case: PerfCase,
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_MEASURE_NS,
) -> dict[str, Any]:
    tb = _build_testbed(case)
    start = time.perf_counter()
    result = drive(
        tb,
        warmup_ns=warmup_ns,
        measure_ns=measure_ns * case.measure_scale,
        warp=case.warp,
        fluid=case.fluid,
    )
    wall = time.perf_counter() - start
    # Simulated traffic actually moved end-to-end (warm-up included: the
    # simulator pays for those packets too).
    packets = sum(m.packets + m.warmup_packets for m in tb.meters)
    row: dict[str, Any] = {
        "wall_s": wall,
        "events": tb.sim.events_executed,
        "delivered_packets": packets,
        "sim_mpps_per_wall_s": packets / wall / 1e6 if wall else float("inf"),
        "gbps": result.gbps,
        "mpps": result.mpps,
    }
    cache = tb.switch.cache_stats()
    if cache:
        row["cache"] = cache
    return row


def _bench_resilience(
    case: PerfCase,
    warmup_ns: float = DEFAULT_WARMUP_NS,
    measure_ns: float = DEFAULT_MEASURE_NS,
) -> dict[str, Any]:
    from repro.faults.plan import FaultEvent, FaultPlan
    from repro.measure.resilience import measure_resilience
    from repro.scenarios import loopback, p2p, p2v, v2v

    builders = {"p2p": p2p.build, "p2v": p2v.build, "v2v": v2v.build, "loopback": loopback.build}
    window = measure_ns * case.measure_scale
    plan = FaultPlan.of(
        FaultEvent.from_dict(
            {"kind": "nic-link-flap", "target": "sut-nic.p1",
             "at_ns": warmup_ns + 0.25 * window, "duration_ns": 4e5}
        ),
        FaultEvent.from_dict(
            {"kind": "nic-link-flap", "target": "sut-nic.p1",
             "at_ns": warmup_ns + 0.65 * window, "duration_ns": 4e5}
        ),
    )
    kwargs: dict[str, Any] = dict(case.extra)
    if case.rate_pps is not None:
        kwargs["rate_pps"] = case.rate_pps
    start = time.perf_counter()
    result, report, _ = measure_resilience(
        builders[case.scenario],
        case.switch,
        case.frame_size,
        plan,
        bidirectional=case.bidirectional,
        warmup_ns=warmup_ns,
        measure_ns=window,
        warp=case.warp,
        **kwargs,
    )
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "events": result.events,
        "delivered_packets": int(result.mpps * 1e6 * window / 1e9),
        "sim_mpps_per_wall_s": result.mpps * window / 1e9 / wall if wall else float("inf"),
        "gbps": result.gbps,
        "mpps": result.mpps,
        "faults": len(report.fault_spans),
    }


_BENCH_KINDS = {
    "engine": lambda case: _bench_engine(),
    "scenario": lambda case: _bench_scenario(case),
    "resilience": lambda case: _bench_resilience(case),
}


def _finalize_case(case: PerfCase, runs: list[dict[str, Any]]) -> dict[str, Any]:
    best = min(runs, key=lambda s: s["wall_s"])
    best["kind"] = case.kind
    # Variance alongside the point estimate: wall_s stays the noise-free
    # minimum, but the trials summary (n, CI, instability verdict over
    # all repeats) is what the variance-aware gate compares against.
    best["samples"] = [s["wall_s"] for s in runs]
    from repro.measure.soundness import summarize_trials

    best["trials"] = summarize_trials(best["samples"], metric="wall_s").to_dict()
    return best


def _run_case(case: PerfCase, repeat: int) -> dict[str, Any]:
    runs = [_BENCH_KINDS[case.kind](case) for _ in range(max(1, repeat))]
    return _finalize_case(case, runs)


def _run_pair(
    case_a: PerfCase, case_b: PerfCase, repeat: int
) -> tuple[dict[str, Any], dict[str, Any]]:
    """Run an A/B pair with interleaved repeats (A, B, A, B, ...)."""
    runs_a: list[dict[str, Any]] = []
    runs_b: list[dict[str, Any]] = []
    for _ in range(max(1, repeat)):
        runs_a.append(_BENCH_KINDS[case_a.kind](case_a))
        runs_b.append(_BENCH_KINDS[case_b.kind](case_b))
    return _finalize_case(case_a, runs_a), _finalize_case(case_b, runs_b)


#: A/B suffix pairs whose repeats are interleaved when both cases are in
#: the selected grid.
_PAIR_SUFFIXES: tuple[tuple[str, str], ...] = (
    (".nowarp", ".warp"),
    (".exact", ".fluid"),
)


def _run_pair_isolated(
    case_a: PerfCase, case_b: PerfCase, repeat: int
) -> tuple[dict[str, Any], dict[str, Any]] | None:
    """Run an A/B pair in a fresh interpreter; None when that fails.

    A/B ratios are sensitive to interpreter state in a way absolute
    timings are not: twenty preceding grid cases warm the allocator free
    lists, which speeds the allocation-heavy event-by-event side more
    than the fast-forward side and deflates the reported ratio by tens
    of percent.  A fresh process (pyperf-style worker isolation) gives
    both sides the same cold start.
    """
    src_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bench.perf",
             case_a.name, case_b.name, str(repeat)],
            capture_output=True, text=True, env=env, timeout=1800,
        )
        if proc.returncode != 0:
            return None
        payload = json.loads(proc.stdout)
        return payload[case_a.name], payload[case_b.name]
    except (OSError, subprocess.SubprocessError, ValueError, KeyError):
        return None


def load_baseline(path: str | Path | None = None) -> dict[str, Any] | None:
    """Load the committed baseline JSON, or None if absent."""
    baseline_path = Path(path) if path is not None else DEFAULT_BASELINE
    if not baseline_path.exists():
        return None
    with open(baseline_path) as fh:
        return json.load(fh)


def run_perf(
    repeat: int = 3,
    cases: tuple[PerfCase, ...] = PERF_CASES,
    baseline_path: str | Path | None = None,
    progress=None,
) -> dict[str, Any]:
    """Run the grid; return the report dict (also used for BENCH_pr3.json)."""
    results: dict[str, Any] = {}
    case_by_name = {c.name: c for c in cases}
    for case in cases:
        if case.name in results:
            continue
        partner: PerfCase | None = None
        for a_sfx, b_sfx in _PAIR_SUFFIXES:
            if case.name.endswith(a_sfx):
                partner = case_by_name.get(case.name[: -len(a_sfx)] + b_sfx)
                break
        if partner is not None and partner.name not in results:
            if progress is not None:
                progress(f"bench {case.name} / {partner.name} (isolated A/B)")
            pair = _run_pair_isolated(case, partner, repeat)
            if pair is None:
                pair = _run_pair(case, partner, repeat)
            results[case.name], results[partner.name] = pair
        else:
            if progress is not None:
                progress(f"bench {case.name}")
            results[case.name] = _run_case(case, repeat)

    from repro.core.warp import engine_features

    report: dict[str, Any] = {
        "bench": "simulator-perf",
        "repeat": repeat,
        "engine": engine_features(),
        "cases": results,
    }
    baseline = load_baseline(baseline_path)
    if baseline is not None:
        base_cases = baseline.get("cases", baseline)
        speedups: dict[str, float] = {}
        for name, current in results.items():
            base = base_cases.get(name)
            if base and base.get("wall_s") and current.get("wall_s"):
                speedups[name] = base["wall_s"] / current["wall_s"]
        report["baseline"] = base_cases
        report["speedup"] = speedups
    # Same-process A/B pairs: "<key>.nowarp"/"<key>.warp" for the exact
    # fast-forward, "<key>.exact"/"<key>.fluid" for the fluid tier.
    warp_speedups: dict[str, float] = {}
    fluid_speedups: dict[str, float] = {}
    for name, row in results.items():
        if name.endswith(".nowarp"):
            key = name[: -len(".nowarp")]
            partner = results.get(key + ".warp")
            if partner and partner.get("wall_s") and row.get("wall_s"):
                warp_speedups[key] = row["wall_s"] / partner["wall_s"]
        elif name.endswith(".exact"):
            key = name[: -len(".exact")]
            partner = results.get(key + ".fluid")
            if partner and partner.get("wall_s") and row.get("wall_s"):
                fluid_speedups[key] = row["wall_s"] / partner["wall_s"]
    if warp_speedups:
        report["warp_speedup"] = warp_speedups
    if fluid_speedups:
        report["fluid_speedup"] = fluid_speedups
    return report


def perf_regressions(
    report: dict[str, Any], max_regress_pct: float
) -> list[tuple[str, float]] | None:
    """Cases slower than the baseline by more than ``max_regress_pct``.

    Returns None when the report carries no baseline comparison (nothing
    to gate against); otherwise the offending ``(case, speedup)`` pairs,
    empty when the gate passes.

    The comparison is variance-aware (``repro.measure.soundness``): when
    both sides carry a ``trials`` summary, the gated ratio is the most
    *optimistic* plausible speedup -- baseline CI high edge over current
    CI low edge -- so overlapping confidence intervals never fail the
    gate on sampling noise, while a genuine slowdown (disjoint CIs below
    the floor) still does.  A side without trial data degrades to its
    point ``wall_s``, which keeps old point-only baselines gateable --
    and the gate fail-closed.  A ratio below ``1 - pct/100`` is a
    regression: at ``--max-regress 10`` a case may run up to 10% slower
    than its committed baseline before CI fails.
    """
    speedups = report.get("speedup")
    if speedups is None:
        return None
    base_cases = report.get("baseline") or {}
    cases = report.get("cases") or {}
    floor = 1.0 - max_regress_pct / 100.0
    regressions: list[tuple[str, float]] = []
    for name, ratio in sorted(speedups.items()):
        base = base_cases.get(name) or {}
        current = cases.get(name) or {}
        base_high = (base.get("trials") or {}).get("ci_high") or base.get("wall_s")
        cur_low = (current.get("trials") or {}).get("ci_low") or current.get("wall_s")
        optimistic = base_high / cur_low if base_high and cur_low else ratio
        if optimistic < floor:
            regressions.append((name, optimistic))
    return regressions


def format_report(report: dict[str, Any]) -> str:
    """Human-readable table of the report."""
    lines = ["simulator perf bench"]
    speedups = report.get("speedup", {})
    for name, row in report["cases"].items():
        rate = (
            f"{row['events_per_sec'] / 1e6:8.2f} Mev/s"
            if row["kind"] == "engine"
            else f"{row['sim_mpps_per_wall_s']:8.2f} sim-Mpps/s"
        )
        extra = f"  x{speedups[name]:.2f} vs baseline" if name in speedups else ""
        trials = row.get("trials") or {}
        if trials.get("n", 0) > 1:
            half_ms = (trials["ci_high"] - trials["ci_low"]) / 2.0 * 1e3
            extra += f"  (n={trials['n']} +-{half_ms:.1f}ms {trials['verdict']})"
        lines.append(f"  {name:<26} {row['wall_s'] * 1e3:9.1f} ms  {rate}{extra}")
    warp_speedups = report.get("warp_speedup", {})
    if warp_speedups:
        lines.append("  warp fast-forward (interleaved A/B, bit-identical results):")
        for key, ratio in sorted(warp_speedups.items()):
            lines.append(f"    {key:<24} x{ratio:.2f} wall-clock")
    fluid_speedups = report.get("fluid_speedup", {})
    if fluid_speedups:
        lines.append("  fluid tier (interleaved A/B, tolerance-gated results):")
        for key, ratio in sorted(fluid_speedups.items()):
            lines.append(f"    {key:<24} x{ratio:.2f} wall-clock")
    return "\n".join(lines)


def _pair_worker(argv: list[str]) -> int:
    """``python -m repro.bench.perf A B N``: run one A/B pair, JSON out.

    The worker half of :func:`_run_pair_isolated` -- a fresh interpreter
    runs the interleaved pair and prints ``{name: result}`` on stdout.
    """
    if len(argv) != 3:
        print("usage: python -m repro.bench.perf CASE_A CASE_B REPEAT", file=sys.stderr)
        return 2
    by_name = {case.name: case for case in ALL_CASES}
    try:
        case_a, case_b = by_name[argv[0]], by_name[argv[1]]
    except KeyError as missing:
        print(f"unknown perf case {missing}", file=sys.stderr)
        return 2
    res_a, res_b = _run_pair(case_a, case_b, int(argv[2]))
    json.dump({case_a.name: res_a, case_b.name: res_b}, sys.stdout)
    return 0


if __name__ == "__main__":
    sys.exit(_pair_worker(sys.argv[1:]))
