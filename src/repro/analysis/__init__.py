"""Analysis: capacity model, paper values, renderers, validation."""

from repro.analysis.bottleneck import CapacityEstimate, estimate
from repro.analysis.tables import ascii_bars, format_series, format_table
from repro.analysis.validate import Check, summarize, validate

__all__ = [
    "CapacityEstimate",
    "Check",
    "ascii_bars",
    "estimate",
    "format_series",
    "format_table",
    "summarize",
    "validate",
]
