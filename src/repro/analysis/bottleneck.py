"""Closed-form capacity model.

The single-core methodology makes throughput predictable: a switch
forwarding over hops with per-packet cycle costs c_1..c_k on one core of
frequency f sustains at most f / sum(c_i) packets per second, further
clipped by the 10 Gbps wire (scenarios with NICs) and the generator's
ceiling.  This module evaluates that bound from the same
:class:`~repro.switches.params.SwitchParams` the simulator uses -- an
independent implementation that tests compare against the discrete-event
results (they must agree within queueing noise), and that the ablation
benches use for fast parameter sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.cores import DEFAULT_FREQ_HZ
from repro.switches.params import SwitchParams
from repro.switches.registry import params_for
from repro.switches.taxonomy import TAXONOMY
from repro.core.units import line_rate_pps, pps_to_gbps


@dataclass(frozen=True)
class CapacityEstimate:
    """Predicted sustained rate for one scenario configuration."""

    switch: str
    scenario: str
    frame_size: int
    bidirectional: bool
    core_capacity_pps: float
    offered_pps: float
    predicted_pps: float

    @property
    def predicted_gbps(self) -> float:
        return pps_to_gbps(self.predicted_pps, self.frame_size)


def _hop_cost(params: SwitchParams, kind: str, frame_size: int, bidir: bool) -> float:
    """Per-packet cycles for one forwarding hop of a given kind."""
    batch = params.batch_size
    proc = params.proc.cycles_per_packet(frame_size, batch)
    nic_rx = params.nic_rx.cycles_per_packet(frame_size, batch)
    nic_tx = params.nic_tx.cycles_per_packet(frame_size, batch)
    vif_tx = params.vif_costs.host_tx.cycles_per_packet(frame_size, batch)
    vif_rx = params.vif_costs.host_rx.cycles_per_packet(frame_size, batch)
    if bidir:
        vif_tx *= params.bidir_vif_penalty
        vif_rx *= params.bidir_vif_penalty
    overhead = 0.0
    if params.pipeline:
        overhead = params.app_overhead_cycles / max(1, batch)
    if kind == "p2p":
        cost = nic_rx + proc + nic_tx
    elif kind == "p2v":
        cost = nic_rx + proc + vif_tx
    elif kind == "v2p":
        cost = vif_rx + proc + nic_tx
    elif kind == "v2v":
        cost = vif_rx + proc + vif_tx
    else:
        raise ValueError(f"unknown hop kind {kind!r}")
    return cost + overhead


def _thrash(params: SwitchParams, attachments: int) -> float:
    if params.thrash_attachments is not None and attachments >= params.thrash_attachments:
        return params.thrash_factor
    return 1.0


def _scenario_hops(scenario: str, n_vnfs: int) -> tuple[list[str], int]:
    """Hop kinds along one direction, plus attachment count."""
    if scenario == "p2p":
        return ["p2p"], 2
    if scenario == "p2v":
        return ["p2v"], 2
    if scenario == "v2v":
        return ["v2v"], 2
    if scenario == "loopback":
        hops = ["p2v"] + ["v2v"] * (n_vnfs - 1) + ["v2p"]
        return hops, 2 + 2 * n_vnfs
    raise ValueError(f"unknown scenario {scenario!r}")


def estimate(
    switch_name: str,
    scenario: str,
    frame_size: int = 64,
    bidirectional: bool = False,
    n_vnfs: int = 1,
    offered_pps: float | None = None,
    freq_hz: float = DEFAULT_FREQ_HZ,
    params: SwitchParams | None = None,
) -> CapacityEstimate:
    """Bottleneck throughput prediction for one configuration.

    For bidirectional runs the estimate is the *aggregate* over both
    directions (the paper's reporting convention).
    """
    if params is None:
        params = params_for(switch_name)
    hops, attachments = _scenario_hops(scenario, n_vnfs)
    per_packet = sum(_hop_cost(params, hop, frame_size, bidirectional) for hop in hops)
    per_packet *= _thrash(params, attachments)
    core_capacity = freq_hz / per_packet  # pps through the whole chain

    line = line_rate_pps(frame_size)
    if offered_pps is None:
        if scenario == "v2v" and TAXONOMY[switch_name].virtual_interface == "ptnet":
            # pkt-gen over ptnet is not bound to a 10G vNIC.
            offered_pps = 60e6
        else:
            offered_pps = line
    directions = 2 if bidirectional else 1
    demand = offered_pps * directions
    predicted = min(demand, core_capacity)
    if scenario != "v2v":
        predicted = min(predicted, line * directions)
    return CapacityEstimate(
        switch=params.name,
        scenario=scenario,
        frame_size=frame_size,
        bidirectional=bidirectional,
        core_capacity_pps=core_capacity,
        offered_pps=offered_pps,
        predicted_pps=predicted,
    )
