"""Closed-form capacity model.

The single-core methodology makes throughput predictable: a switch
forwarding over hops with per-packet cycle costs c_1..c_k on one core of
frequency f sustains at most f / sum(c_i) packets per second, further
clipped by the 10 Gbps wire (scenarios with NICs) and the generator's
ceiling.  This module evaluates that bound from the same
:class:`~repro.switches.params.SwitchParams` the simulator uses -- an
independent implementation that tests compare against the discrete-event
results (they must agree within queueing noise), and that the ablation
benches use for fast parameter sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.cores import DEFAULT_FREQ_HZ
from repro.switches.params import SwitchParams
from repro.switches.registry import params_for
from repro.switches.taxonomy import TAXONOMY
from repro.core.units import line_rate_pps, pps_to_gbps


@dataclass(frozen=True)
class CapacityEstimate:
    """Predicted sustained rate for one scenario configuration."""

    switch: str
    scenario: str
    frame_size: int
    bidirectional: bool
    core_capacity_pps: float
    offered_pps: float
    predicted_pps: float

    @property
    def predicted_gbps(self) -> float:
        return pps_to_gbps(self.predicted_pps, self.frame_size)


def _hop_stage_costs(
    params: SwitchParams, kind: str, frame_size: int, bidir: bool
) -> tuple[float, float, float]:
    """Per-packet (rx, proc, tx) cycles for one forwarding hop of a given kind."""
    batch = params.batch_size
    proc = params.proc.cycles_per_packet(frame_size, batch)
    nic_rx = params.nic_rx.cycles_per_packet(frame_size, batch)
    nic_tx = params.nic_tx.cycles_per_packet(frame_size, batch)
    vif_tx = params.vif_costs.host_tx.cycles_per_packet(frame_size, batch)
    vif_rx = params.vif_costs.host_rx.cycles_per_packet(frame_size, batch)
    if bidir:
        vif_tx *= params.bidir_vif_penalty
        vif_rx *= params.bidir_vif_penalty
    if kind == "p2p":
        return nic_rx, proc, nic_tx
    if kind == "p2v":
        return nic_rx, proc, vif_tx
    if kind == "v2p":
        return vif_rx, proc, nic_tx
    if kind == "v2v":
        return vif_rx, proc, vif_tx
    raise ValueError(f"unknown hop kind {kind!r}")


def _hop_cost(params: SwitchParams, kind: str, frame_size: int, bidir: bool) -> float:
    """Per-packet cycles for one forwarding hop of a given kind."""
    rx, proc, tx = _hop_stage_costs(params, kind, frame_size, bidir)
    overhead = 0.0
    if params.pipeline:
        overhead = params.app_overhead_cycles / max(1, params.batch_size)
    return rx + proc + tx + overhead


def _thrash(params: SwitchParams, attachments: int) -> float:
    if params.thrash_attachments is not None and attachments >= params.thrash_attachments:
        return params.thrash_factor
    return 1.0


def _scenario_hops(scenario: str, n_vnfs: int) -> tuple[list[str], int]:
    """Hop kinds along one direction, plus attachment count."""
    if scenario == "p2p":
        return ["p2p"], 2
    if scenario == "p2v":
        return ["p2v"], 2
    if scenario == "v2v":
        return ["v2v"], 2
    if scenario == "loopback":
        hops = ["p2v"] + ["v2v"] * (n_vnfs - 1) + ["v2p"]
        return hops, 2 + 2 * n_vnfs
    raise ValueError(f"unknown scenario {scenario!r}")


#: Stage keys of :func:`stage_breakdown`, matching the observed profiler's
#: :data:`repro.obs.profiler.STAGES`.
STAGES = ("rx", "proc", "tx", "overhead")


def stage_breakdown(
    switch_name: str,
    scenario: str,
    frame_size: int = 64,
    bidirectional: bool = False,
    n_vnfs: int = 1,
    params: SwitchParams | None = None,
) -> dict[str, float]:
    """Closed-form per-stage cycles/packet along one direction of the chain.

    The counterpart of the observed
    :meth:`repro.obs.profiler.ProfileReport.chain_cycles_per_packet`:
    ``rx``/``proc``/``tx`` are the raw attachment + switching costs summed
    over the chain's hops, and ``overhead`` holds everything the stability
    model layers on top -- pipeline app overhead (amortised over a full
    batch) and the thrash-cliff inflation -- mirroring how the profiler
    attributes the (jittered - raw) residue.  ``sum(values())`` is exactly
    the per-packet cost :func:`estimate` divides the core frequency by.

    Note the observed report for a *bidirectional* run sums both symmetric
    directions; this returns one direction (halve the observed figures, or
    compare per-path, when diffing bidirectional runs).
    """
    if params is None:
        params = params_for(switch_name)
    hops, attachments = _scenario_hops(scenario, n_vnfs)
    stages = {stage: 0.0 for stage in STAGES}
    for hop in hops:
        rx, proc, tx = _hop_stage_costs(params, hop, frame_size, bidirectional)
        stages["rx"] += rx
        stages["proc"] += proc
        stages["tx"] += tx
        if params.pipeline:
            stages["overhead"] += params.app_overhead_cycles / max(1, params.batch_size)
    thrash = _thrash(params, attachments)
    if thrash != 1.0:
        stages["overhead"] += (thrash - 1.0) * sum(stages.values())
    return stages


def diff_attribution(
    observed: dict[str, float], predicted: dict[str, float]
) -> dict[str, dict[str, float]]:
    """Diff an observed cycles/packet breakdown against the closed form.

    Both arguments map stage name -> cycles/packet (e.g. the observed
    :meth:`~repro.obs.profiler.ProfileReport.chain_cycles_per_packet` and
    :func:`stage_breakdown`).  Returns, per stage plus a ``"total"`` row:
    ``observed``, ``predicted``, ``delta`` (observed - predicted) and
    ``ratio`` (observed / predicted; ``inf`` when predicting zero but
    observing some, 1.0 when both are zero).
    """
    def row(obs: float, pred: float) -> dict[str, float]:
        if pred:
            ratio = obs / pred
        else:
            ratio = 1.0 if not obs else float("inf")
        return {"observed": obs, "predicted": pred, "delta": obs - pred, "ratio": ratio}

    seen = set(observed) | set(predicted)
    ordered = [s for s in STAGES if s in seen] + sorted(seen - set(STAGES))
    out = {
        stage: row(observed.get(stage, 0.0), predicted.get(stage, 0.0))
        for stage in ordered
    }
    out["total"] = row(sum(observed.values()), sum(predicted.values()))
    return out


def estimate(
    switch_name: str,
    scenario: str,
    frame_size: int = 64,
    bidirectional: bool = False,
    n_vnfs: int = 1,
    offered_pps: float | None = None,
    freq_hz: float = DEFAULT_FREQ_HZ,
    params: SwitchParams | None = None,
) -> CapacityEstimate:
    """Bottleneck throughput prediction for one configuration.

    For bidirectional runs the estimate is the *aggregate* over both
    directions (the paper's reporting convention).
    """
    if params is None:
        params = params_for(switch_name)
    _, attachments = _scenario_hops(scenario, n_vnfs)
    stages = stage_breakdown(
        switch_name, scenario, frame_size, bidirectional, n_vnfs, params=params
    )
    per_packet = sum(stages.values())
    core_capacity = freq_hz / per_packet  # pps through the whole chain

    line = line_rate_pps(frame_size)
    if offered_pps is None:
        if scenario == "v2v" and TAXONOMY[switch_name].virtual_interface == "ptnet":
            # pkt-gen over ptnet is not bound to a 10G vNIC.
            offered_pps = 60e6
        else:
            offered_pps = line
    directions = 2 if bidirectional else 1
    demand = offered_pps * directions
    predicted = min(demand, core_capacity)
    if scenario != "v2v":
        predicted = min(predicted, line * directions)
    return CapacityEstimate(
        switch=params.name,
        scenario=scenario,
        frame_size=frame_size,
        bidirectional=bidirectional,
        core_capacity_pps=core_capacity,
        offered_pps=offered_pps,
        predicted_pps=predicted,
    )
