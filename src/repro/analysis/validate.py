"""Reproduction validation: grade the simulation against the paper.

Runs the quantitatively-anchored experiments (the numbers the paper's
text states explicitly) and the qualitative orderings, and grades each
as pass/fail with a tolerance.  This is the library's self-check --
``repro-bench validate`` -- and the programmatic answer to "does this
reproduction still hold after my change?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.paper_values import (
    FIG4A_P2P_UNI_64B,
    FIG4B_P2V_UNI_64B,
    TABLE4,
    VPP_P2V_REVERSED_64B,
)
from repro.measure.runner import drive
from repro.measure.throughput import measure_throughput
from repro.scenarios import loopback, p2p, p2v, v2v

#: Relative tolerance for explicit paper values (the paper calls its own
#: numbers "only indicative"; our calibration targets +-20%).
VALUE_TOLERANCE = 0.25


@dataclass(frozen=True)
class Check:
    """One graded comparison against the paper."""

    artifact: str
    name: str
    measured: float
    expected: float | None
    passed: bool
    detail: str = ""


def _value_check(artifact: str, name: str, measured: float, expected: float, tolerance: float = VALUE_TOLERANCE) -> Check:
    passed = abs(measured - expected) <= tolerance * expected
    return Check(artifact, name, measured, expected, passed, f"±{int(tolerance * 100)}%")


def _ordering_check(artifact: str, name: str, condition: bool, measured: float, detail: str) -> Check:
    return Check(artifact, name, measured, None, condition, detail)


def validate(
    warmup_ns: float = 300_000.0,
    measure_ns: float = 1_500_000.0,
    seed: int = 1,
    progress: Callable[[str], None] | None = None,
) -> list[Check]:
    """Run the validation battery; returns one Check per criterion."""
    windows = dict(warmup_ns=warmup_ns, measure_ns=measure_ns, seed=seed)
    checks: list[Check] = []

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    # --- Fig. 4a anchors -------------------------------------------------
    note("fig4a: p2p unidirectional 64B")
    p2p_uni = {
        name: measure_throughput(p2p.build, name, 64, **windows).gbps
        for name in FIG4A_P2P_UNI_64B
    }
    for name, expected in FIG4A_P2P_UNI_64B.items():
        checks.append(_value_check("fig4a", f"{name} p2p uni 64B", p2p_uni[name], expected))
    note("fig4a: BESS bidirectional")
    bess_bidi = measure_throughput(p2p.build, "bess", 64, bidirectional=True, **windows).gbps
    checks.append(_value_check("fig4a", "bess p2p bidi 64B", bess_bidi, 16.0))

    # --- Fig. 4b anchors -------------------------------------------------
    note("fig4b: p2v anchors")
    for name, expected in FIG4B_P2V_UNI_64B.items():
        if expected is None:
            continue
        measured = measure_throughput(p2v.build, name, 64, **windows).gbps
        checks.append(_value_check("fig4b", f"{name} p2v uni 64B", measured, expected))
    reversed_vpp = measure_throughput(p2v.build, "vpp", 64, reversed_path=True, **windows).gbps
    checks.append(_value_check("fig4b", "vpp p2v reversed 64B", reversed_vpp, VPP_P2V_REVERSED_64B))

    # --- Fig. 4c orderings -----------------------------------------------
    note("fig4c: v2v ordering")
    vale_v2v = measure_throughput(v2v.build, "vale", 64, **windows).gbps
    snabb_v2v = measure_throughput(v2v.build, "snabb", 64, **windows).gbps
    snabb_p2v = measure_throughput(p2v.build, "snabb", 64, **windows).gbps
    checks.append(_value_check("fig4c", "vale v2v uni 64B", vale_v2v, 10.5))
    checks.append(
        _ordering_check(
            "fig4c", "snabb v2v > p2v", snabb_v2v > 0.95 * snabb_p2v, snabb_v2v,
            "the only switch improving into v2v",
        )
    )

    # --- Fig. 5 orderings ------------------------------------------------
    note("fig5: loopback orderings")
    loop1 = {
        name: measure_throughput(loopback.build, name, 64, n_vnfs=1, **windows).gbps
        for name in ("bess", "vpp", "vale", "t4p4s", "snabb")
    }
    checks.append(
        _ordering_check(
            "fig5", "bess wins 1-VNF", loop1["bess"] == max(loop1.values()), loop1["bess"],
            "highest 1-VNF throughput",
        )
    )
    checks.append(
        _ordering_check(
            "fig5", "t4p4s worst 1-VNF", loop1["t4p4s"] == min(loop1.values()), loop1["t4p4s"],
            "lowest 1-VNF throughput",
        )
    )
    snabb3 = measure_throughput(loopback.build, "snabb", 64, n_vnfs=3, **windows).gbps
    snabb4 = measure_throughput(loopback.build, "snabb", 64, n_vnfs=4, **windows).gbps
    checks.append(
        _ordering_check(
            "fig5", "snabb collapses at 4 VNFs", snabb4 < snabb3 / 3, snabb4,
            "throughput plummets (Sec. 5.2)",
        )
    )

    # --- Table 4 ----------------------------------------------------------
    note("table4: v2v latency")
    rtts = {}
    for name in TABLE4:
        tb = v2v.build_latency(name, seed=seed)
        result = drive(tb, warmup_ns=warmup_ns, measure_ns=max(measure_ns, 2_000_000.0))
        rtts[name] = result.latency.mean_us
    checks.append(
        _ordering_check(
            "table4", "vale lowest v2v RTT", rtts["vale"] == min(rtts.values()), rtts["vale"],
            "ping over ptnet",
        )
    )
    checks.append(
        _ordering_check(
            "table4", "t4p4s/snabb highest v2v RTT",
            sorted(rtts, key=rtts.get)[-2:] in (["snabb", "t4p4s"], ["t4p4s", "snabb"]),
            rtts["t4p4s"],
            "worst two pipelines",
        )
    )
    return checks


def summarize(checks: list[Check]) -> tuple[int, int]:
    """(passed, total)."""
    return sum(1 for c in checks if c.passed), len(checks)
