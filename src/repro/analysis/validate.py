"""Reproduction validation: grade the simulation against the paper.

Runs the quantitatively-anchored experiments (the numbers the paper's
text states explicitly) and the qualitative orderings, and grades each
as pass/fail with a tolerance.  This is the library's self-check --
``repro-bench validate`` -- and the programmatic answer to "does this
reproduction still hold after my change?".

The measurement battery itself is expressed as a campaign
(:mod:`repro.campaign`): every anchor becomes a declarative
:class:`~repro.campaign.spec.RunSpec`, executed serially or across
worker processes (``workers``) with optional on-disk memoisation
(``cache``) -- results are identical either way, because each run is a
pure function of its spec and seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable

from repro.analysis.paper_values import (
    FIG4A_P2P_UNI_64B,
    FIG4B_P2V_UNI_64B,
    TABLE4,
    VPP_P2V_REVERSED_64B,
)
from repro.campaign.executor import run_campaign
from repro.campaign.progress import ProgressReporter
from repro.campaign.spec import CampaignSpec, RunRecord, RunSpec

#: Relative tolerance for explicit paper values (the paper calls its own
#: numbers "only indicative"; our calibration targets +-20%).
VALUE_TOLERANCE = 0.25


@dataclass(frozen=True)
class Check:
    """One graded comparison against the paper."""

    artifact: str
    name: str
    measured: float
    expected: float | None
    passed: bool
    detail: str = ""


def _value_check(artifact: str, name: str, measured: float, expected: float, tolerance: float = VALUE_TOLERANCE) -> Check:
    passed = abs(measured - expected) <= tolerance * expected
    return Check(artifact, name, measured, expected, passed, f"±{int(tolerance * 100)}%")


def _ordering_check(artifact: str, name: str, condition: bool, measured: float, detail: str) -> Check:
    return Check(artifact, name, measured, None, condition, detail)


def _battery(warmup_ns: float, measure_ns: float, seed: int) -> list[RunSpec]:
    """Every simulation the validation criteria consume, as one grid."""
    windows = dict(warmup_ns=warmup_ns, measure_ns=measure_ns, seed=seed)
    specs: list[RunSpec] = []
    # Fig. 4a anchors: p2p unidirectional, plus the BESS bidirectional probe.
    specs += [RunSpec("p2p", name, **windows) for name in FIG4A_P2P_UNI_64B]
    specs.append(RunSpec("p2p", "bess", bidirectional=True, **windows))
    # Fig. 4b anchors, plus VPP's reversed-path probe.
    specs += [
        RunSpec("p2v", name, **windows)
        for name, expected in FIG4B_P2V_UNI_64B.items()
        if expected is not None
    ]
    specs.append(RunSpec("p2v", "vpp", extra=(("reversed_path", True),), **windows))
    # Fig. 4c orderings.
    specs += [RunSpec("v2v", "vale", **windows), RunSpec("v2v", "snabb", **windows)]
    specs.append(RunSpec("p2v", "snabb", **windows))
    # Fig. 5 orderings.
    specs += [
        RunSpec("loopback", name, n_vnfs=1, **windows)
        for name in ("bess", "vpp", "vale", "t4p4s", "snabb")
    ]
    specs += [
        RunSpec("loopback", "snabb", n_vnfs=n, **windows) for n in (3, 4)
    ]
    # Table 4: v2v RTT drives (longer window so probes accumulate).
    specs += [
        RunSpec(
            "v2v",
            name,
            kind="latency",
            warmup_ns=warmup_ns,
            measure_ns=max(measure_ns, 2_000_000.0),
            seed=seed,
        )
        for name in TABLE4
    ]
    return specs


def validate(
    warmup_ns: float = 300_000.0,
    measure_ns: float = 1_500_000.0,
    seed: int = 1,
    progress: Callable[[str], None] | None = None,
    workers: int = 1,
    cache=None,
    obs=None,
    metrics_sink: dict | None = None,
    repeat: int = 1,
    seed_policy: str | None = None,
) -> list[Check]:
    """Run the validation battery; returns one Check per criterion.

    ``workers`` fans the battery out over processes; ``cache`` (a
    :class:`~repro.campaign.cache.ResultCache`) memoises runs on disk.
    Both leave every measured value bit-identical to serial, uncached
    execution -- as does observing the battery with ``obs`` (an
    :class:`~repro.obs.session.ObsConfig`), which additionally fills
    ``metrics_sink`` (if given) with ``{run label: metrics snapshot}``.

    ``repeat > 1`` measures every anchor that many times and grades each
    criterion on the *mean* across replicas.  It requires an explicit
    ``seed_policy`` (``"trial"`` for soundness trials that perturb only
    measurement phases, ``"reseed"`` for whole-workload reseeding) --
    repeating without stating how replicas differ would silently grade
    one arbitrary interpretation, so that is an error.  ``repeat=1``
    (the default) is bit-identical to the pre-soundness battery.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    if repeat > 1 and seed_policy is None:
        from repro.measure.soundness import SEED_POLICIES

        raise ValueError(
            "repeat > 1 requires an explicit seed_policy "
            f"(one of {SEED_POLICIES}): replicas must state whether they "
            "are soundness trials or whole-workload reseeds"
        )
    if seed_policy not in (None, "trial", "reseed"):
        from repro.measure.soundness import SEED_POLICIES

        raise ValueError(
            f"unknown seed policy {seed_policy!r}; known: {SEED_POLICIES}"
        )
    windows = dict(warmup_ns=warmup_ns, measure_ns=measure_ns, seed=seed)
    specs = _battery(warmup_ns, measure_ns, seed)
    if repeat > 1:
        from repro.measure.soundness import trial_specs

        specs = [
            rep for spec in specs for rep in trial_specs(spec, repeat, seed_policy)
        ]
    # Anchors shared between criteria (e.g. snabb p2v feeds both Fig. 4b
    # and the Fig. 4c ordering) are simulated once.
    campaign = CampaignSpec(name="validate", runs=tuple(specs)).deduplicated()
    obs_items: tuple = ()
    if obs is not None:
        campaign = campaign.with_obs(obs)
        obs_items = campaign.runs[0].obs if campaign.runs else ()
    reporter = ProgressReporter(total=len(campaign), emit=progress)
    result = run_campaign(campaign, workers=workers, cache=cache, progress=reporter)

    failures = result.failures
    if failures:
        labels = ", ".join(f.spec.label for f in failures)
        raise RuntimeError(f"validation runs failed: {labels}")

    if metrics_sink is not None:
        for _, outcome in result.outcomes:
            if isinstance(outcome, RunRecord) and outcome.metrics is not None:
                metrics_sink[outcome.spec.label] = outcome.metrics

    def replicas_of(spec: RunSpec) -> list[RunSpec]:
        if repeat > 1:
            from repro.measure.soundness import trial_specs

            reps = trial_specs(spec, repeat, seed_policy)
        else:
            reps = [spec]
        return [replace(rep, obs=obs_items) for rep in reps]

    def gbps(spec: RunSpec) -> float:
        values = []
        for rep in replicas_of(spec):
            outcome = result.outcome_for(rep)
            if isinstance(outcome, RunRecord) and outcome.status == "ok":
                values.append(outcome.gbps)
        if not values:
            return math.nan
        return sum(values) / len(values)

    checks: list[Check] = []

    # --- Fig. 4a anchors -------------------------------------------------
    for name, expected in FIG4A_P2P_UNI_64B.items():
        measured = gbps(RunSpec("p2p", name, **windows))
        checks.append(_value_check("fig4a", f"{name} p2p uni 64B", measured, expected))
    bess_bidi = gbps(RunSpec("p2p", "bess", bidirectional=True, **windows))
    checks.append(_value_check("fig4a", "bess p2p bidi 64B", bess_bidi, 16.0))

    # --- Fig. 4b anchors -------------------------------------------------
    for name, expected in FIG4B_P2V_UNI_64B.items():
        if expected is None:
            continue
        measured = gbps(RunSpec("p2v", name, **windows))
        checks.append(_value_check("fig4b", f"{name} p2v uni 64B", measured, expected))
    reversed_vpp = gbps(RunSpec("p2v", "vpp", extra=(("reversed_path", True),), **windows))
    checks.append(_value_check("fig4b", "vpp p2v reversed 64B", reversed_vpp, VPP_P2V_REVERSED_64B))

    # --- Fig. 4c orderings -----------------------------------------------
    vale_v2v = gbps(RunSpec("v2v", "vale", **windows))
    snabb_v2v = gbps(RunSpec("v2v", "snabb", **windows))
    snabb_p2v = gbps(RunSpec("p2v", "snabb", **windows))
    checks.append(_value_check("fig4c", "vale v2v uni 64B", vale_v2v, 10.5))
    checks.append(
        _ordering_check(
            "fig4c", "snabb v2v > p2v", snabb_v2v > 0.95 * snabb_p2v, snabb_v2v,
            "the only switch improving into v2v",
        )
    )

    # --- Fig. 5 orderings ------------------------------------------------
    loop1 = {
        name: gbps(RunSpec("loopback", name, n_vnfs=1, **windows))
        for name in ("bess", "vpp", "vale", "t4p4s", "snabb")
    }
    checks.append(
        _ordering_check(
            "fig5", "bess wins 1-VNF", loop1["bess"] == max(loop1.values()), loop1["bess"],
            "highest 1-VNF throughput",
        )
    )
    checks.append(
        _ordering_check(
            "fig5", "t4p4s worst 1-VNF", loop1["t4p4s"] == min(loop1.values()), loop1["t4p4s"],
            "lowest 1-VNF throughput",
        )
    )
    snabb3 = gbps(RunSpec("loopback", "snabb", n_vnfs=3, **windows))
    snabb4 = gbps(RunSpec("loopback", "snabb", n_vnfs=4, **windows))
    checks.append(
        _ordering_check(
            "fig5", "snabb collapses at 4 VNFs", snabb4 < snabb3 / 3, snabb4,
            "throughput plummets (Sec. 5.2)",
        )
    )

    # --- Table 4 ----------------------------------------------------------
    rtts = {}
    for name in TABLE4:
        spec = RunSpec(
            "v2v",
            name,
            kind="latency",
            warmup_ns=warmup_ns,
            measure_ns=max(measure_ns, 2_000_000.0),
            seed=seed,
        )
        values = []
        for rep in replicas_of(spec):
            outcome = result.outcome_for(rep)
            if isinstance(outcome, RunRecord) and outcome.latency_mean_us is not None:
                values.append(outcome.latency_mean_us)
        rtts[name] = sum(values) / len(values) if values else math.nan
    checks.append(
        _ordering_check(
            "table4", "vale lowest v2v RTT", rtts["vale"] == min(rtts.values()), rtts["vale"],
            "ping over ptnet",
        )
    )
    checks.append(
        _ordering_check(
            "table4", "t4p4s/snabb highest v2v RTT",
            sorted(rtts, key=rtts.get)[-2:] in (["snabb", "t4p4s"], ["t4p4s", "snabb"]),
            rtts["t4p4s"],
            "worst two pipelines",
        )
    )
    return checks


def summarize(checks: list[Check]) -> tuple[int, int]:
    """(passed, total)."""
    return sum(1 for c in checks if c.passed), len(checks)
