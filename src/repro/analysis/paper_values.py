"""The paper's reported numbers, as machine-readable reference data.

Sources: Sec. 5.2 prose for throughput (figures are plots; the text quotes
the load-bearing values), Table 3 and Table 4 verbatim for latency.  Used
by the benches to print measured-vs-paper columns and by EXPERIMENTS.md
generation.  ``None`` means the paper shows the value only graphically.
"""

from __future__ import annotations

#: Fig. 4a, 64 B unidirectional p2p throughput (Gbps).
FIG4A_P2P_UNI_64B = {
    "bess": 10.0,
    "fastclick": 10.0,
    "vpp": 10.0,
    "ovs-dpdk": 8.05,
    "snabb": 8.9,
    "vale": 5.56,
    "t4p4s": 5.6,
}

#: Fig. 4a, 64 B bidirectional aggregates quoted in the text.
FIG4A_P2P_BIDI_64B = {
    "bess": 16.0,       # "BESS even reaches 16 Gbps"
    "fastclick": None,  # "manage to exceed 10 Gbps"
    "vpp": None,        # "manage to exceed 10 Gbps"
    "ovs-dpdk": None,
    "snabb": None,
    "vale": None,
    "t4p4s": None,
}

#: Fig. 4b, 64 B unidirectional p2v throughput (Gbps).
FIG4B_P2V_UNI_64B = {
    "bess": 10.0,
    "fastclick": None,  # "5 to 7 Gbps"
    "vpp": 6.9,
    "ovs-dpdk": None,   # "5 to 7 Gbps"
    "snabb": 5.97,
    "vale": 5.77,
    "t4p4s": 4.04,
}

#: Sec. 5.2 extra p2v data points.
VPP_P2V_REVERSED_64B = 5.59
BESS_P2V_BIDI_64B = 11.38
VPP_P2V_BIDI_64B = 5.9
VALE_P2V_BIDI_1024B = 15.0

#: Fig. 4c, 64 B unidirectional v2v throughput (Gbps).
FIG4C_V2V_UNI_64B = {
    "bess": None,      # "lower than 7.4"
    "fastclick": None,
    "vpp": None,
    "ovs-dpdk": None,
    "snabb": 6.42,
    "vale": 10.5,
    "t4p4s": None,
}

#: Sec. 5.2: VALE bidirectional v2v at 1024 B is 35 Gbps = 64% of uni.
VALE_V2V_BIDI_1024B = 35.0
VALE_V2V_BIDI_RATIO = 0.64

#: Table 3: RTT latency (us) for p2p and loopback 1-4 VNFs at
#: (0.10, 0.50, 0.99) x R+.  '-' in the paper (BESS > 3 VNFs) is None.
TABLE3 = {
    "bess": {
        "p2p": (4.0, 4.6, 6.4),
        1: (35, 15, 39),
        2: (67, 33, 136),
        3: (167, 55, 147),
        4: None,
    },
    "fastclick": {
        "p2p": (5.3, 7.8, 8.4),
        1: (69, 26, 37),
        2: (164, 47, 70),
        3: (368, 73, 129),
        4: (978, 107, 149),
    },
    "ovs-dpdk": {
        "p2p": (4.3, 5.2, 9.6),
        1: (50, 23, 514),
        2: (124, 42, 909),
        3: (182, 90, 1052),
        4: (235, 124, 336),
    },
    "snabb": {
        "p2p": (7.3, 11.3, 22),
        1: (70, 27, 74),
        2: (123, 53, 146),
        3: (186, 95, 266),
        4: (406, 365, 1181),
    },
    "vpp": {
        "p2p": (4.5, 5.9, 13.1),
        1: (41, 20, 47),
        2: (116, 47, 74),
        3: (175, 73, 98),
        4: (231, 87, 131),
    },
    "vale": {
        "p2p": (32, 34, 59),
        1: (32, 35, 65),
        2: (41, 51, 90),
        3: (54, 74, 132),
        4: (67, 100, 166),
    },
    "t4p4s": {
        "p2p": (32, 31, 174),
        1: (169, 65, 2259),
        2: (274, 117, 3911),
        3: (434, 192, 5535),
        4: (548, 228, 7275),
    },
}

#: Table 4: v2v RTT latency (us).
TABLE4 = {
    "bess": 37.0,
    "fastclick": 45.0,
    "ovs-dpdk": 43.0,
    "snabb": 67.0,
    "vpp": 42.0,
    "vale": 21.0,
    "t4p4s": 70.0,
}

#: Sec. 5.2 loopback findings (qualitative anchors for Fig. 5 / Fig. 6).
LOOPBACK_FINDINGS = (
    "BESS yields the highest 1-VNF throughput",
    "BESS cannot run more than 3 VNFs (QEMU incompatibility)",
    "VALE outperforms vhost-user switches as chains grow",
    "VALE sustains ~10 Gbps at 1024 B regardless of chain length",
    "Snabb becomes overloaded at 4 VNFs and its throughput plummets",
    "bidirectional chains degrade every switch, VALE most sharply",
)
