"""Text renderers for the paper's tables and figures.

Every bench prints its artifact through these helpers so the output of
``pytest benchmarks/`` reads like the paper's evaluation section.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None) -> str:
    """Monospace table with right-aligned numeric columns."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if math.isnan(cell):
            return "-"
        if cell >= 100:
            return f"{cell:.0f}"
        if cell >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    return str(cell)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float | None]) -> str:
    """One figure series as 'name: x=y, x=y, ...' (what a plot would show)."""
    points = ", ".join(
        f"{x}={_fmt(y)}" for x, y in zip(xs, ys)
    )
    return f"{name}: {points}"


def ascii_bars(values: dict[str, float], width: int = 40, unit: str = "Gbps") -> str:
    """Horizontal ASCII bar chart (for the examples' output)."""
    if not values:
        return "(no data)"
    peak = max(values.values()) or 1.0
    label_width = max(len(k) for k in values)
    lines = []
    for key, value in values.items():
        bar = "#" * max(1, int(round(width * value / peak))) if value > 0 else ""
        lines.append(f"{key.ljust(label_width)}  {bar} {value:.2f} {unit}")
    return "\n".join(lines)
