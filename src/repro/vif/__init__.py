"""Virtual interface substrate: virtio rings, vhost-user, ptnet."""

from repro.vif.ptnet import DEFAULT_PTNET_COSTS, make_ptnet_interface
from repro.vif.vhost_user import DEFAULT_VHOST_COSTS, make_vhost_user_interface
from repro.vif.virtio import (
    DEFAULT_PTNET_SLOTS,
    DEFAULT_VRING_SLOTS,
    VifCosts,
    VirtualInterface,
)

__all__ = [
    "DEFAULT_PTNET_COSTS",
    "DEFAULT_PTNET_SLOTS",
    "DEFAULT_VHOST_COSTS",
    "DEFAULT_VRING_SLOTS",
    "VifCosts",
    "VirtualInterface",
    "make_ptnet_interface",
    "make_vhost_user_interface",
]
