"""Virtual interfaces between the host data plane and guest VMs.

A :class:`VirtualInterface` is a pair of bounded rings plus a cost
contract describing who pays what to move a packet across the host/guest
boundary.  Two backends exist in the paper (Sec. 3.5):

* **vhost-user** -- the DPDK/QEMU standard used by BESS, Snabb, OvS-DPDK,
  FastClick, VPP and t4p4s.  The host data plane copies each packet
  into/out of the virtio ring buffers (one memcpy per direction on the
  host side; four copies for a v2v round trip, Sec. 5.3).
* **ptnet** -- netmap passthrough used by VALE: guests map host netmap
  buffers directly, so crossing the boundary is zero-copy (descriptor
  update only), "at the cost of a lower degree of host-VM isolation".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.ring import Ring, disconnect_ring, freeze_ring, restore_ring
from repro.cpu.costmodel import Cost

if TYPE_CHECKING:
    from repro.cpu.numa import MemoryBus

#: virtio vring depth negotiated by QEMU/vhost-user in the testbed era.
DEFAULT_VRING_SLOTS = 1024
#: netmap/ptnet ring depth.
DEFAULT_PTNET_SLOTS = 1024


@dataclass(frozen=True)
class VifCosts:
    """Cycle costs of crossing the host/guest boundary.

    ``host_tx``/``host_rx`` are paid by the host data-plane core (the
    switch) to enqueue towards / dequeue from the guest.  ``guest_tx`` /
    ``guest_rx`` are paid by the guest vCPU running the VNF's driver.
    """

    host_tx: Cost
    host_rx: Cost
    guest_tx: Cost
    guest_rx: Cost
    #: bytes of memcpy per packet per host-side transfer, as a multiple of
    #: the frame size (1.0 for vhost-user, 0.0 for zero-copy ptnet) --
    #: reserved on the NUMA node's memory bus.
    host_copy_factor: float


class VirtualInterface:
    """A host<->guest packet channel (one guest NIC)."""

    def __init__(
        self,
        name: str,
        backend: str,
        costs: VifCosts,
        slots: int = DEFAULT_VRING_SLOTS,
        bus: "MemoryBus | None" = None,
        notify_ns: float = 0.0,
    ) -> None:
        self.name = name
        self.backend = backend
        self.costs = costs
        #: eventfd/irqfd notification latency per crossing (vhost-user
        #: "kick"); zero for ptnet, which shares rings without kicks.
        self.notify_ns = notify_ns
        #: host -> guest direction (guest's receive queue).
        self.to_guest = Ring(slots, name=f"{name}.to_guest")
        #: guest -> host direction (guest's transmit queue).
        self.to_host = Ring(slots, name=f"{name}.to_host")
        self.bus = bus

    def host_copy_bytes(self, total_bytes: int) -> int:
        """Bytes of host-side memcpy incurred to move ``total_bytes``."""
        return int(total_bytes * self.costs.host_copy_factor)

    def reserve_bus(self, total_bytes: int, now_ns: float) -> float:
        """Reserve memory bandwidth for a host-side copy; returns extra ns."""
        if self.bus is None:
            return 0.0
        copy_bytes = self.host_copy_bytes(total_bytes)
        if copy_bytes <= 0:
            return 0.0
        return self.bus.reserve(copy_bytes, now_ns)

    # -- fault hooks (repro.faults) ----------------------------------------

    def disconnect(self) -> int:
        """vhost-user backend death: both vrings detach, contents are lost.

        Returns the number of in-flight frames discarded.  Pushes from
        either side drop (and count) until :meth:`reconnect`.
        """
        return disconnect_ring(self.to_guest) + disconnect_ring(self.to_host)

    def reconnect(self) -> None:
        """Backend reconnects: fresh, empty, working vrings."""
        restore_ring(self.to_guest)
        restore_ring(self.to_host)

    def freeze(self) -> None:
        """virtio ring freeze: descriptors stop being reaped on both
        directions; producers fill the remaining slots, then overflow-drop."""
        freeze_ring(self.to_guest)
        freeze_ring(self.to_host)

    def thaw(self) -> None:
        """End a freeze; preserved ring contents drain normally."""
        restore_ring(self.to_guest)
        restore_ring(self.to_host)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualInterface({self.name}, backend={self.backend})"
