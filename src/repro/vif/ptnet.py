"""ptnet backend (netmap passthrough).

ptnet grants the guest direct access to host netmap port buffers, so
crossing the host/guest boundary costs only a descriptor/ring-index
update -- no memcpy, no descriptor format conversion (Sec. 3.5: packets
are delivered "in zero-copy manner without incurring the overhead of
queueing (as for virtio) or packet descriptor format conversion").

This is why VALE's p2v throughput *exceeds* its p2p throughput and why it
dominates v2v and long service chains (Sec. 5.2) -- the copy VALE does
pay happens inside the VALE switch itself (port-to-port isolation copy),
not at the VM boundary.
"""

from __future__ import annotations

from repro.cpu.costmodel import Cost
from repro.cpu.numa import MemoryBus
from repro.vif.virtio import DEFAULT_PTNET_SLOTS, VifCosts, VirtualInterface

#: Zero-copy boundary: small fixed descriptor work, no per-byte term.
DEFAULT_PTNET_COSTS = VifCosts(
    host_tx=Cost(per_batch=60.0, per_packet=12.0, per_byte=0.0),
    host_rx=Cost(per_batch=60.0, per_packet=12.0, per_byte=0.0),
    guest_tx=Cost(per_batch=70.0, per_packet=22.0, per_byte=0.0),
    guest_rx=Cost(per_batch=70.0, per_packet=22.0, per_byte=0.0),
    host_copy_factor=0.0,
)


def make_ptnet_interface(
    name: str,
    costs: VifCosts = DEFAULT_PTNET_COSTS,
    slots: int = DEFAULT_PTNET_SLOTS,
    bus: MemoryBus | None = None,
) -> VirtualInterface:
    """Create a ptnet (netmap passthrough) guest interface."""
    return VirtualInterface(name, backend="ptnet", costs=costs, slots=slots, bus=bus)
