"""vhost-user backend.

vhost-user maps the guest's virtio rings into the host data plane's
address space so packets move without kernel involvement -- but *with* a
memcpy on the host side in each direction (enqueue into / dequeue out of
the vring buffers).  That memcpy, plus descriptor-format conversion and
the avail/used index protocol, is the "overhead imposed by vhost-user"
the paper invokes to explain every p2v/v2v/loopback gap (Sec. 5.2).

Cost structure (host side, per direction):

* per_batch  -- read avail index, publish used index, eventfd "kick"
  suppression check;
* per_packet -- descriptor fetch, virtio-net header prepend/strip,
  format conversion;
* per_byte   -- the payload memcpy itself.

Guest side costs model the virtio-net PMD inside the VM (DPDK igb_uio /
virtio PMD in the paper's guests).
"""

from __future__ import annotations

from repro.cpu.costmodel import Cost
from repro.cpu.numa import MemoryBus
from repro.vif.virtio import DEFAULT_VRING_SLOTS, VifCosts, VirtualInterface

#: Baseline DPDK vhost library costs (BESS, FastClick, OvS-DPDK, t4p4s use
#: these; VPP and Snabb override -- see repro.switches.params).
DEFAULT_VHOST_COSTS = VifCosts(
    host_tx=Cost(per_batch=120.0, per_packet=55.0, per_byte=0.25),
    host_rx=Cost(per_batch=120.0, per_packet=60.0, per_byte=0.25),
    guest_tx=Cost(per_batch=90.0, per_packet=40.0, per_byte=0.12),
    guest_rx=Cost(per_batch=90.0, per_packet=35.0, per_byte=0.12),
    host_copy_factor=1.0,
)


#: eventfd "kick" + guest notification latency per vring crossing.
VHOST_NOTIFY_NS = 1_500.0


def make_vhost_user_interface(
    name: str,
    costs: VifCosts = DEFAULT_VHOST_COSTS,
    slots: int = DEFAULT_VRING_SLOTS,
    bus: MemoryBus | None = None,
    notify_ns: float = VHOST_NOTIFY_NS,
) -> VirtualInterface:
    """Create a vhost-user backed guest interface."""
    return VirtualInterface(
        name, backend="vhost-user", costs=costs, slots=slots, bus=bus, notify_ns=notify_ns
    )
