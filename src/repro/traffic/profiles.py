"""Traffic profiles: frame-size mixes and flow structures.

The paper's evaluation uses fixed-size single-flow synthetic traffic
(64/256/1024 B), and motivates realism by citing the ~850 B average
packet size in data centres [Benson et al. 2009].  This module provides
the profiles needed to go beyond the fixed-size workload:

* fixed-size (the paper's workload);
* IMIX (the classic 7:4:1 mix of 64/594/1518 B);
* a data-centre-like bimodal mix matching the cited 850 B average;
* uniform and custom mixes;

plus flow-structure helpers for the OvS flow-cache experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.units import MAX_FRAME, MIN_FRAME, wire_bytes


@dataclass(frozen=True)
class SizeProfile:
    """A distribution over frame sizes."""

    name: str
    sizes: tuple[int, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.weights):
            raise ValueError("sizes and weights must align")
        if not self.sizes:
            raise ValueError("profile needs at least one size")
        for size in self.sizes:
            if not MIN_FRAME <= size <= MAX_FRAME:
                raise ValueError(f"frame size {size} outside [{MIN_FRAME}, {MAX_FRAME}]")
        if any(w <= 0 for w in self.weights):
            raise ValueError("weights must be positive")

    @property
    def probabilities(self) -> np.ndarray:
        weights = np.asarray(self.weights, dtype=float)
        return weights / weights.sum()

    @property
    def mean_size(self) -> float:
        """Expected frame size in bytes."""
        return float(np.dot(self.sizes, self.probabilities))

    @property
    def mean_wire_bytes(self) -> float:
        """Expected on-wire footprint (frame + 20 B overhead)."""
        return float(
            np.dot([wire_bytes(s) for s in self.sizes], self.probabilities)
        )

    def line_rate_pps(self, rate_bps: float = 10e9) -> float:
        """Packet rate saturating a link with this mix."""
        return rate_bps / (self.mean_wire_bytes * 8)

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` frame sizes."""
        return rng.choice(self.sizes, size=count, p=self.probabilities)


def fixed(size: int) -> SizeProfile:
    """The paper's fixed-size workload."""
    return SizeProfile(name=f"fixed-{size}", sizes=(size,), weights=(1.0,))


#: Classic simple IMIX: 7 x 64 B : 4 x 594 B : 1 x 1518 B.
IMIX = SizeProfile(name="imix", sizes=(64, 594, 1518), weights=(7.0, 4.0, 1.0))

#: Bimodal data-centre mix tuned to the ~850 B average the paper cites
#: (Sec. 5.2 references Benson et al.'s data-centre measurements).
DATACENTER = SizeProfile(
    name="datacenter", sizes=(64, 1518), weights=(0.46, 0.54)
)

PROFILES = {p.name: p for p in (IMIX, DATACENTER)}


@dataclass(frozen=True)
class FlowProfile:
    """A flow-structure specification for cache-sensitivity studies."""

    name: str
    flow_count: int
    #: Zipf skew (0 = round-robin/uniform; >0 = heavy-tailed popularity).
    zipf_alpha: float = 0.0

    def __post_init__(self) -> None:
        if self.flow_count < 1:
            raise ValueError("flow_count must be >= 1")
        if self.zipf_alpha < 0:
            raise ValueError("zipf_alpha must be >= 0")

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` flow ids."""
        if self.zipf_alpha == 0.0:
            return rng.integers(0, self.flow_count, size=count)
        # Inverse-CDF sampling off a cached cumulative distribution:
        # ``rng.choice(p=...)`` rebuilds its alias table on every call,
        # which is prohibitive at 10^6 flows.
        cdf = self.__dict__.get("_cdf_cache")
        if cdf is None:
            ranks = np.arange(1, self.flow_count + 1, dtype=float)
            pmf = ranks ** (-self.zipf_alpha)
            pmf /= pmf.sum()
            cdf = np.cumsum(pmf)
            cdf[-1] = 1.0
            object.__setattr__(self, "_cdf_cache", cdf)
        return np.searchsorted(cdf, rng.random(count)).astype(np.int64)


SINGLE_FLOW = FlowProfile(name="single", flow_count=1)
