"""FloWatcher-DPDK: the lightweight in-guest throughput monitor.

Used for p2v/v2v unidirectional measurements with every switch except
VALE (Sec. 5.2).  Like pkt-gen, it "performs measurement with negligible
overhead"; the simulation realises it as a :class:`GuestMonitor` over a
virtio interface, with the per-flow counter table that is the tool's
actual purpose (per-flow statistics at line rate).
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

from repro.core.packet import Packet
from repro.vif.virtio import VirtualInterface
from repro.traffic.guest import GuestMonitor

if TYPE_CHECKING:
    from repro.core.engine import Simulator


class FloWatcher(GuestMonitor):
    """GuestMonitor plus FloWatcher's per-flow packet counters."""

    def __init__(self, sim: "Simulator", vif: VirtualInterface, frame_size: int, per_flow: bool = True):
        super().__init__(sim, vif, frame_size)
        self.per_flow = per_flow
        self.flow_counts: Counter[int] = Counter()

    def _on_batch(self, batch: list[Packet]) -> None:
        if self.per_flow:
            counts = self.flow_counts
            for item in batch:
                counts[item.flow_id] += item.count
