"""pkt-gen: netmap's generator/monitor, used with VALE (Sec. 5.1).

The VM's ptnet driver "is tightly coupled with host VALE ports and can
only render optimal performance with netmap compatible tools", so VALE
tests use pkt-gen in the guests instead of MoonGen/FloWatcher.  In the
simulation pkt-gen shares the guest generator/monitor machinery; the
factory functions here exist so scenario code reads like the paper's
setup, and so pkt-gen-specific capabilities (no 10 Gbps vNIC cap --
ptnet is not a paravirtualised 10G device) live in one place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.ring import Ring
from repro.vif.virtio import VirtualInterface
from repro.traffic.guest import GuestMonitor, GuestTrafficGen

if TYPE_CHECKING:
    from repro.core.engine import Simulator

#: pkt-gen over ptnet is not emulating a 10G NIC: its ceiling is the
#: netmap API itself.  High enough to never bind before the SUT does.
PKTGEN_MAX_RATE_PPS = 60e6


def make_pktgen_tx(
    sim: "Simulator",
    vif: VirtualInterface,
    rate_pps: float,
    frame_size: int,
    via_ring: Ring | None = None,
    **kwargs,
) -> GuestTrafficGen:
    """pkt-gen in TX mode bound to a ptnet port (or a bridge ring)."""
    return GuestTrafficGen(
        sim, vif, min(rate_pps, PKTGEN_MAX_RATE_PPS), frame_size, via_ring=via_ring, **kwargs
    )


def make_pktgen_rx(
    sim: "Simulator",
    vif: VirtualInterface | None,
    frame_size: int,
    from_ring: Ring | None = None,
) -> GuestMonitor:
    """pkt-gen in RX mode (traffic monitor)."""
    return GuestMonitor(sim, vif, frame_size, from_ring=from_ring)
