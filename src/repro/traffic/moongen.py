"""MoonGen: the paper's default traffic generator and monitor.

MoonGen owns the NUMA-node-1 NIC: its TX thread saturates the wire with
synthetic frames while a second thread injects PTP probes that the Intel
82599 hardware-timestamps on the way out and back in (Sec. 5.3).  The RX
side counts frames at wire arrival (a hardware counter read, free of
software overhead) and extracts probe RTTs.

The paper also notes MoonGen's TX-rate granularity: rates in
[9.88, 10] Gbps are rounded up to line rate (footnote 6) -- reproduced in
:func:`effective_tx_rate`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.packet import Packet, PacketBlock, release_block
from repro.core.stats import RateMeter
from repro.core.units import LINE_RATE_BPS, gbps_to_pps, line_rate_pps, pps_to_gbps
from repro.nic.port import NicPort
from repro.traffic.generator import PacedSource

if TYPE_CHECKING:
    from repro.core.engine import Simulator

#: MoonGen cannot hit arbitrary rates near line rate; [9.88, 10] Gbps is
#: rounded up to 10 Gbps (paper footnote 6).
RATE_GRANULARITY_FLOOR_GBPS = 9.88


def effective_tx_rate(requested_pps: float, frame_size: int) -> float:
    """Apply MoonGen's TX-rate rounding near line rate."""
    requested_gbps = pps_to_gbps(requested_pps, frame_size)
    if RATE_GRANULARITY_FLOOR_GBPS <= requested_gbps < 10.0:
        return line_rate_pps(frame_size)
    return requested_pps


class MoonGenTx(PacedSource):
    """MoonGen transmit thread bound to a physical port."""

    def __init__(self, sim: "Simulator", port: NicPort, rate_pps: float, frame_size: int, **kwargs):
        rate_pps = min(effective_tx_rate(rate_pps, frame_size), line_rate_pps(frame_size, port.rate_bps))
        super().__init__(sim, rate_pps, frame_size, name=f"moongen-tx@{port.name}", **kwargs)
        self.port = port
        port.timestamp_tx = True  # 82599 hardware TX timestamping for probes

    def _emit(self, batch: list[Packet]) -> None:
        self.port.send_batch(batch)


class MoonGenRx:
    """MoonGen receive/monitor thread bound to a physical port.

    Counts throughput at wire arrival and records hardware-timestamped
    probe RTTs into its :class:`RateMeter`.
    """

    def __init__(self, sim: "Simulator", port: NicPort, frame_size: int):
        self.sim = sim
        self.port = port
        self.meter = RateMeter(frame_size_hint=frame_size)
        #: Optional per-flow accounting; None unless flow telemetry is on.
        self.flowstats = None
        port.timestamp_rx = True
        port.sink = self._on_packets

    def _on_packets(self, packets: list[Packet | PacketBlock]) -> None:
        now = self.sim.now
        meter = self.meter
        flowstats = self.flowstats
        if flowstats is not None:
            flowstats.rx_batch(packets)
        in_window = (
            meter.window_start_ns is not None
            and now >= meter.window_start_ns
            and (meter.window_end_ns is None or now <= meter.window_end_ns)
        )
        for item in packets:
            if item.__class__ is PacketBlock:
                # Hardware counter read: one add per block of frames, then
                # the block's journey ends here (recycle it).
                meter.record_block(now, item.size, item.count)
                release_block(item)
                continue
            meter.record(now, item.size)
            if in_window and item.is_probe and item.latency_ns is not None:
                meter.latency.add(item.latency_ns)
                if flowstats is not None:
                    flowstats.latency(item.flow_id, item.latency_ns)


def saturating_rate(frame_size: int, rate_bps: int = LINE_RATE_BPS) -> float:
    """Offered load for the paper's saturating-input methodology."""
    return line_rate_pps(frame_size, rate_bps)


def load_rate(fraction: float, r_plus_pps: float) -> float:
    """Offered load at a fraction of the maximal forwarding rate R+."""
    if fraction <= 0:
        raise ValueError("load fraction must be positive")
    return fraction * r_plus_pps


def rate_for_gbps(gbps: float, frame_size: int) -> float:
    """Offered rate (pps) for a target normalised Gbps (e.g. v2v's 672 Mbps)."""
    return gbps_to_pps(gbps, frame_size)
