"""In-guest traffic tools: generator and monitor bases.

MoonGen, FloWatcher-DPDK and pkt-gen all run *inside* VMs for the
p2v/v2v tests (Sec. 5.2).  The generator emits into the guest interface's
TX ring (or a bridge ring for VALE's pkt-gen workaround); the monitor
drains the guest RX side, counts throughput and records probe RTTs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.packet import Packet, PacketBlock, batch_stats, release_block
from repro.core.ring import Ring
from repro.core.stats import RateMeter
from repro.cpu.cores import Core
from repro.traffic.generator import PacedSource
from repro.vif.virtio import VirtualInterface

if TYPE_CHECKING:
    from repro.core.engine import Simulator


class GuestTrafficGen(PacedSource):
    """MoonGen or pkt-gen running inside a guest, transmitting.

    Emits into the guest interface's TX ring (or a bridge ring).  The
    generator runs on a dedicated vCPU and, as the paper verified,
    sustains its vNIC's line rate; we model its pacing, not its cycles.
    """

    def __init__(
        self,
        sim: "Simulator",
        vif: VirtualInterface,
        rate_pps: float,
        frame_size: int,
        via_ring: Ring | None = None,
        **kwargs,
    ) -> None:
        super().__init__(sim, rate_pps, frame_size, name=f"guest-gen@{vif.name}", **kwargs)
        self.vif = vif
        self._out_ring = via_ring if via_ring is not None else vif.to_host

    def _emit(self, batch: list[Packet]) -> None:
        self._out_ring.push_batch(batch)


class GuestMonitor:
    """FloWatcher-DPDK / pkt-gen RX: counts frames, records probe RTTs.

    Both tools "perform measurement with negligible overhead" (Sec. 5.2),
    so the monitor only pays the guest-side driver cost of draining its
    receive ring.
    """

    MAX_BATCH = 256

    def __init__(
        self,
        sim: "Simulator",
        vif: VirtualInterface | None,
        frame_size: int,
        from_ring: Ring | None = None,
        stamp_probe_rx: Callable[[Packet, float], None] | None = None,
    ) -> None:
        if vif is None and from_ring is None:
            raise ValueError("monitor needs a vif or an explicit ring")
        self.sim = sim
        self.vif = vif
        self._in_ring = from_ring if from_ring is not None else vif.to_guest
        self.meter = RateMeter(frame_size_hint=frame_size)
        self.stamp_probe_rx = stamp_probe_rx
        #: Optional per-flow accounting; None unless flow telemetry is on.
        self.flowstats = None
        #: Pure-reactive declaration for Core parking: the monitor only
        #: drains this ring and holds no time-based state, so its vCPU may
        #: skip idle poll iterations while the ring is empty.
        self.park_rings = (self._in_ring,)

    def poll(self, core: Core) -> float:
        ring = self._in_ring
        if not ring._frames:  # idle fast path: no pop, no list allocation
            return 0.0
        batch = ring.pop_batch(self.MAX_BATCH)
        if not batch:
            return 0.0
        now = self.sim.now
        cycles = 0.0
        if self.vif is not None:
            frames, total_bytes = batch_stats(batch)
            cycles = self.vif.costs.guest_rx.cycles(frames, total_bytes)
        self._on_batch(batch)
        meter = self.meter
        flowstats = self.flowstats
        if flowstats is not None:
            flowstats.rx_batch(batch)
        in_window = (
            meter.window_start_ns is not None
            and now >= meter.window_start_ns
            and (meter.window_end_ns is None or now <= meter.window_end_ns)
        )
        for item in batch:
            if item.__class__ is PacketBlock:
                # Monitor is a terminal consumer: count and recycle.
                meter.record_block(now, item.size, item.count)
                release_block(item)
                continue
            meter.record(now, item.size)
            if item.is_probe:
                if self.stamp_probe_rx is not None:
                    self.stamp_probe_rx(item, now)
                else:
                    item.rx_timestamp = now
                if in_window and item.latency_ns is not None:
                    meter.latency.add(item.latency_ns)
                    if flowstats is not None:
                        flowstats.latency(item.flow_id, item.latency_ns)
        return cycles

    def _on_batch(self, batch: list[Packet | PacketBlock]) -> None:
        """Hook for subclasses to inspect each drained batch."""
