"""Traffic generation primitives shared by MoonGen, pkt-gen and the guest
tools.

A :class:`PacedSource` emits synthetic traffic -- identical frames of one
flow, exactly like the paper's workload -- at a configured rate, in bursts
(hardware generators DMA descriptors in bursts; per-packet pacing below
burst granularity is not observable by the SUT).  Latency probes (the
PTP packets MoonGen's second thread injects, Sec. 5.3) are flagged frames
woven into the stream at a fixed interval.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.packet import Packet, PacketBlock, acquire_block, blocks_enabled
from repro.core.packet import DEFAULT_DST_MAC, DEFAULT_SRC_MAC

if TYPE_CHECKING:
    from repro.core.engine import Simulator

#: Probe spacing used by the latency tests: sparse enough not to perturb
#: the background load, dense enough for stable statistics.
DEFAULT_PROBE_INTERVAL_NS = 20_000.0


class PacedSource:
    """Emits bursts of synthetic frames at a fixed offered rate.

    Subclasses implement :meth:`_emit` to inject the burst into a NIC port
    (host MoonGen) or a virtio/ptnet ring (guest generators).
    """

    def __init__(
        self,
        sim: "Simulator",
        rate_pps: float,
        frame_size: int,
        burst: int = 32,
        flow_id: int = 0,
        probe_interval_ns: float | None = None,
        stamp_probe_tx: Callable[[Packet, float], None] | None = None,
        flow_count: int = 1,
        size_profile=None,
        flow_profile=None,
        flow_population=None,
        rng: np.random.Generator | None = None,
        name: str = "source",
    ) -> None:
        if rate_pps <= 0:
            raise ValueError("offered rate must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        if flow_count < 1:
            raise ValueError("flow_count must be >= 1")
        self.sim = sim
        self.rate_pps = rate_pps
        self.frame_size = frame_size
        # At low offered rates the generator's DMA bursts shrink so pacing
        # stays smooth (a hardware-assisted generator does not hold packets
        # back for tens of microseconds just to fill a descriptor burst).
        self.burst = max(1, min(burst, int(rate_pps * 4e-6) or 1))
        self.flow_id = flow_id
        self.flow_count = flow_count
        self.probe_interval_ns = probe_interval_ns
        self.stamp_probe_tx = stamp_probe_tx
        self.flow_population = flow_population
        if size_profile is None and flow_population is not None:
            size_profile = flow_population.size_profile
        self.size_profile = size_profile
        self.flow_profile = flow_profile
        if (
            size_profile is not None
            or flow_profile is not None
            or flow_population is not None
        ) and rng is None:
            # Fallback for direct construction; scenario builders pass a
            # named per-run stream (``rngs.stream("flows.<source>")``) so
            # multi-flow runs stay deterministic and parallel-safe.
            rng = np.random.default_rng(0)
        self.name = name
        self._rng = rng
        #: Optional per-flow accounting (:class:`repro.obs.flowstats.FlowStats`);
        #: None unless flow telemetry is enabled -- the un-accounted cost is
        #: one attribute test per emitted burst.
        self.flowstats = None
        self.packets_sent = 0
        self.probes_sent = 0
        self._next_probe_at = 0.0
        self._stop_at: float | None = None
        self._flow_cursor = 0
        self._halted = False
        self._chain_broken = False

    def start(self, t0_ns: float = 0.0, stop_at_ns: float | None = None) -> None:
        """Begin emitting at ``t0_ns``; stop after ``stop_at_ns`` if given."""
        self._stop_at = stop_at_ns
        self._next_probe_at = t0_ns
        self.sim.at(t0_ns, self._tick)

    def _tick(self) -> None:
        now = self.sim.now
        if self._halted:
            self._chain_broken = True
            return
        if self._stop_at is not None and now >= self._stop_at:
            return
        burst = self.burst
        if self._uniform and blocks_enabled():
            batch = self._make_block_burst(now, burst)
        elif (
            self.flow_population is not None
            and self.flow_profile is None
            and blocks_enabled()
        ):
            batch = self._make_flow_burst(now, burst)
        else:
            batch = self._make_burst(now)
        if self.flowstats is not None:
            self.flowstats.tx_batch(batch)
        self._emit(batch)
        self.packets_sent += burst
        self.sim.after(burst * 1e9 / self.rate_pps, self._tick)

    @property
    def _uniform(self) -> bool:
        """Uniform streams (one flow, fixed size) can be emitted as blocks."""
        return (
            self.size_profile is None
            and self.flow_profile is None
            and self.flow_population is None
            and self.flow_count == 1
        )

    def _make_block_burst(self, now: float, burst: int) -> list[Packet | PacketBlock]:
        """Flyweight burst: one block, plus an exact probe Packet when due.

        The probe is drawn *first* so it takes the burst's lowest seq --
        exactly the frame (``batch[0]``) the per-packet path flags.
        """
        batch: list[Packet | PacketBlock] = []
        if self.probe_interval_ns is not None and now >= self._next_probe_at:
            probe = Packet(size=self.frame_size, flow_id=self.flow_id, t_created=now)
            probe.is_probe = True
            self.probes_sent += 1
            if self.stamp_probe_tx is not None:
                self.stamp_probe_tx(probe, now)
            self._next_probe_at = now + self.probe_interval_ns
            batch.append(probe)
            burst -= 1
        if burst > 0:
            batch.append(
                acquire_block(
                    self.frame_size,
                    self.flow_id,
                    DEFAULT_SRC_MAC,
                    DEFAULT_DST_MAC,
                    now,
                    burst,
                )
            )
        return batch

    def _make_flow_burst(self, now: float, burst: int) -> list[Packet | PacketBlock]:
        """Flyweight multi-flow burst: size-run blocks carrying flow RLEs.

        Draw order matches :meth:`_make_burst`'s population path exactly
        (sizes first, then flows), so flipping the emission mode mid-study
        leaves the shared RNG stream in the same state.  The probe, when
        due, materialises frame 0 of the burst -- its sampled size and
        flow -- and takes the lowest seq.
        """
        rng = self._rng
        sizes = None
        if self.size_profile is not None:
            sizes = self.size_profile.sample(rng, burst)
        flows = self.flow_population.sample_flows(rng, burst, now)
        batch: list[Packet | PacketBlock] = []
        start = 0
        if self.probe_interval_ns is not None and now >= self._next_probe_at:
            flow = self.flow_id + int(flows[0])
            probe = Packet(
                size=int(sizes[0]) if sizes is not None else self.frame_size,
                flow_id=flow,
                src_mac=DEFAULT_SRC_MAC + flow,
                t_created=now,
            )
            probe.is_probe = True
            self.probes_sent += 1
            if self.stamp_probe_tx is not None:
                self.stamp_probe_tx(probe, now)
            self._next_probe_at = now + self.probe_interval_ns
            batch.append(probe)
            start = 1
        i = start
        while i < burst:
            if sizes is None:
                size = self.frame_size
                j = burst
            else:
                size = int(sizes[i])
                j = i + 1
                while j < burst and sizes[j] == size:
                    j += 1
            runs: list[list[int]] = []
            for k in range(i, j):
                flow = self.flow_id + int(flows[k])
                if runs and runs[-1][0] == flow:
                    runs[-1][1] += 1
                else:
                    runs.append([flow, 1])
            first_flow = runs[0][0]
            batch.append(
                acquire_block(
                    size,
                    first_flow,
                    DEFAULT_SRC_MAC + first_flow,
                    DEFAULT_DST_MAC,
                    now,
                    j - i,
                    flows=(
                        tuple((f, c) for f, c in runs) if len(runs) > 1 else None
                    ),
                )
            )
            i = j
        return batch

    def _make_burst(self, now: float) -> list[Packet]:
        sizes = None
        if self.size_profile is not None:
            sizes = self.size_profile.sample(self._rng, self.burst)
        flows = None
        population = self.flow_population
        if population is not None:
            flows = population.sample_flows(self._rng, self.burst, now)
        elif self.flow_profile is not None:
            flows = self.flow_profile.sample(self._rng, self.burst)
        batch = []
        for i in range(self.burst):
            if flows is not None:
                flow = self.flow_id + int(flows[i])
            elif self.flow_count > 1:
                flow = self.flow_id + self._flow_cursor
                self._flow_cursor = (self._flow_cursor + 1) % self.flow_count
            else:
                flow = self.flow_id
            size = int(sizes[i]) if sizes is not None else self.frame_size
            if population is not None:
                packet = Packet(
                    size=size, flow_id=flow, src_mac=DEFAULT_SRC_MAC + flow, t_created=now
                )
            else:
                packet = Packet(size=size, flow_id=flow, t_created=now)
            batch.append(packet)
        if self.probe_interval_ns is not None and now >= self._next_probe_at:
            probe = batch[0]
            probe.is_probe = True
            self.probes_sent += 1
            if self.stamp_probe_tx is not None:
                self.stamp_probe_tx(probe, now)
            self._next_probe_at = now + self.probe_interval_ns
        return batch

    def _emit(self, batch: list[Packet]) -> None:
        raise NotImplementedError

    # -- fault hooks (repro.faults) ----------------------------------------

    def halt(self) -> None:
        """Stop emitting (crashed generator app); pacing chain breaks on
        its next scheduled tick."""
        self._halted = True

    def resume(self) -> None:
        """Restart emission after a halt.

        If the halt window outlasted the inter-burst gap the pacing chain
        already broke and is re-armed now; otherwise the still-pending tick
        simply carries on.
        """
        if not self._halted:
            return
        self._halted = False
        if self._chain_broken:
            self._chain_broken = False
            self.sim.after(0.0, self._tick)
