"""Traffic generation and monitoring tools (MoonGen, pkt-gen, FloWatcher)."""

from repro.traffic.flowatcher import FloWatcher
from repro.traffic.generator import DEFAULT_PROBE_INTERVAL_NS, PacedSource
from repro.traffic.guest import GuestMonitor, GuestTrafficGen
from repro.traffic.moongen import (
    MoonGenRx,
    MoonGenTx,
    effective_tx_rate,
    load_rate,
    rate_for_gbps,
    saturating_rate,
)
from repro.traffic.pktgen import PKTGEN_MAX_RATE_PPS, make_pktgen_rx, make_pktgen_tx
from repro.traffic.profiles import DATACENTER, IMIX, PROFILES, FlowProfile, SizeProfile, fixed

__all__ = [
    "DATACENTER",
    "DEFAULT_PROBE_INTERVAL_NS",
    "FlowProfile",
    "IMIX",
    "PROFILES",
    "SizeProfile",
    "fixed",
    "FloWatcher",
    "GuestMonitor",
    "GuestTrafficGen",
    "MoonGenRx",
    "MoonGenTx",
    "PKTGEN_MAX_RATE_PPS",
    "PacedSource",
    "effective_tx_rate",
    "load_rate",
    "make_pktgen_rx",
    "make_pktgen_tx",
    "rate_for_gbps",
    "saturating_rate",
]
