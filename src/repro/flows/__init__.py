"""repro.flows: flow-population specs for traffic diversity studies.

The paper's per-switch pipelines hinge on flow-cache behaviour (OvS-DPDK's
EMC/megaflow hierarchy, VALE's MAC learning, t4p4s table lookup), yet fixed
single-flow traffic only ever exercises their hit paths.  This package makes
flow count, per-flow-rate skew (uniform/Zipf), flow churn and size mixes a
first-class axis: a :class:`FlowPopulation` rides from the CLI through
scenario builders into the generators, which emit flow-diverse traffic as
run-length summaries on the flyweight blocks (see ``repro.core.packet``)
so the PR 3 block fast path survives at a million concurrent flows.
"""

from repro.flows.population import (
    FlowPopulation,
    flow_axis_items,
    flow_kwargs_from_items,
    resolve_flow_population,
)

__all__ = [
    "FlowPopulation",
    "flow_axis_items",
    "flow_kwargs_from_items",
    "resolve_flow_population",
]
