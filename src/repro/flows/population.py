"""Flow-population specifications.

A :class:`FlowPopulation` describes the *structure* of offered traffic
independently of its rate: how many concurrent flows exist, how traffic
is spread across them (uniform or Zipf-skewed), whether the active flow
set churns over time, and optionally which frame-size mix rides along.

Design notes
------------

* **Trivial populations normalise away.**  ``flows=1`` with no churn and
  no size mix is exactly the seed workload; :func:`resolve_flow_population`
  returns ``None`` for it so every pre-existing code path (block fast
  path, warp, golden stats) is taken verbatim.

* **Sampling is vectorised and cache-friendly.**  Zipf draws go through a
  precomputed CDF + ``searchsorted`` instead of ``rng.choice(p=...)``,
  which rebuilds the distribution per call -- the difference between
  milliseconds and minutes at a million flows.

* **Churn is deterministic.**  Rather than spending RNG state on
  arrival/departure processes (which would perturb serial-vs-parallel
  identity), churn slides the active flow window by
  ``int(now_ns * churn_fps * 1e-9)``: ``churn_fps`` flows retire and
  ``churn_fps`` fresh flows appear per simulated second, as a pure
  function of simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.traffic.profiles import PROFILES, SizeProfile

#: Flow-rate distributions a population can use.
FLOW_DISTS = ("uniform", "zipf")

#: Default Zipf skew: mildly heavy-tailed, matching the alpha range used
#: in flow-cache benchmarking literature.
DEFAULT_ZIPF_ALPHA = 1.1


@dataclass(frozen=True)
class FlowPopulation:
    """How offered traffic is spread across concurrent flows."""

    flows: int = 1
    dist: str = "uniform"
    zipf_alpha: float = DEFAULT_ZIPF_ALPHA
    #: Flows retired (and fresh flows introduced) per simulated second.
    churn_fps: float = 0.0
    #: Optional frame-size mix name from ``repro.traffic.profiles.PROFILES``.
    size_mix: str | None = None
    #: Trial-axis phase shift of the deterministic churn clock
    #: (``repro.measure.soundness``): the churn window slides as if the
    #: run had started this many ns later.  Never serialised -- it is
    #: derived from ``trial.*`` RNG streams, not part of the workload
    #: definition.
    churn_offset_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.flows < 1:
            raise ValueError("flows must be >= 1")
        if self.dist not in FLOW_DISTS:
            raise ValueError(f"dist must be one of {FLOW_DISTS}, got {self.dist!r}")
        if self.zipf_alpha <= 0:
            raise ValueError("zipf_alpha must be > 0")
        if self.churn_fps < 0:
            raise ValueError("churn_fps must be >= 0")
        if self.churn_offset_ns < 0:
            raise ValueError("churn_offset_ns must be >= 0")
        if self.size_mix is not None and self.size_mix not in PROFILES:
            raise ValueError(
                f"unknown size mix {self.size_mix!r}; known: {sorted(PROFILES)}"
            )

    @property
    def is_trivial(self) -> bool:
        """True when this population is exactly the seed workload."""
        return self.flows == 1 and self.churn_fps == 0.0 and self.size_mix is None

    @property
    def size_profile(self) -> SizeProfile | None:
        return PROFILES[self.size_mix] if self.size_mix else None

    def _cdf(self) -> np.ndarray | None:
        """Cumulative rank-popularity distribution (Zipf only), cached."""
        if self.dist != "zipf" or self.flows == 1:
            return None
        cached = self.__dict__.get("_cdf_cache")
        if cached is None:
            ranks = np.arange(1, self.flows + 1, dtype=float)
            pmf = ranks ** (-self.zipf_alpha)
            pmf /= pmf.sum()
            cached = np.cumsum(pmf)
            cached[-1] = 1.0  # guard searchsorted against rounding
            object.__setattr__(self, "_cdf_cache", cached)
        return cached

    def sample_flows(
        self, rng: np.random.Generator, count: int, now_ns: float = 0.0
    ) -> np.ndarray:
        """Draw ``count`` absolute flow ranks active at ``now_ns``.

        Churn shifts the active window deterministically: the same
        popularity rank maps to a fresh flow id once its predecessor
        has retired.
        """
        if self.flows == 1:
            ranks = np.zeros(count, dtype=np.int64)
        elif self.dist == "zipf":
            ranks = np.searchsorted(self._cdf(), rng.random(count)).astype(np.int64)
        else:
            ranks = rng.integers(0, self.flows, size=count)
        if self.churn_fps:
            # churn_offset_ns == 0.0 adds exactly nothing (float identity),
            # keeping base runs bit-identical.
            ranks = ranks + int((now_ns + self.churn_offset_ns) * self.churn_fps * 1e-9)
        return ranks


def resolve_flow_population(
    flows: int = 1,
    flow_dist: str = "uniform",
    churn: float = 0.0,
    size_mix: str | None = None,
    zipf_alpha: float = DEFAULT_ZIPF_ALPHA,
) -> FlowPopulation | None:
    """Build a population from scenario/CLI kwargs; ``None`` when trivial."""
    pop = FlowPopulation(
        flows=int(flows),
        dist=flow_dist,
        zipf_alpha=zipf_alpha,
        churn_fps=float(churn),
        size_mix=size_mix,
    )
    return None if pop.is_trivial else pop


def flow_axis_items(
    flows: int = 1,
    flow_dist: str = "uniform",
    churn: float = 0.0,
    size_mix: str | None = None,
) -> tuple[tuple[str, Any], ...]:
    """Canonical ``RunSpec.extra`` items for the flow axis.

    Defaults are omitted entirely so single-flow specs hash and cache
    exactly as they did before the flow axis existed.
    """
    items: list[tuple[str, Any]] = []
    if flows != 1:
        items.append(("flows", int(flows)))
        if flow_dist != "uniform":
            items.append(("flow_dist", flow_dist))
    if churn:
        items.append(("churn", float(churn)))
    if size_mix is not None:
        items.append(("size_mix", size_mix))
    return tuple(items)


def flow_kwargs_from_items(extra: dict) -> dict:
    """Split flow-axis keys out of an ``extra`` mapping (in place)."""
    return {
        key: extra.pop(key)
        for key in ("flows", "flow_dist", "churn", "size_mix")
        if key in extra
    }
