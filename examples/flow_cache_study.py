"""SDN flow-cache study: OvS-DPDK beyond the paper's single-flow workload.

The paper notes its synthetic traffic is one flow of identical packets,
so "OvS-DPDK's flow cache does not help" (Sec. 5.2).  This example asks
the follow-up question an SDN operator would: what happens with *real*
flow counts?  It sweeps concurrent flows through the modelled three-level
OvS datapath (EMC -> dpcls megaflow -> ofproto upcall) and reports
throughput, cache hit rates and upcall counts.

Usage::

    python examples/flow_cache_study.py
"""

from __future__ import annotations

import sys

from repro.analysis.tables import format_table
from repro.core.engine import Simulator
from repro.core.rng import RngRegistry
from repro.cpu.numa import Machine
from repro.measure.runner import drive
from repro.nic.port import NicPort
from repro.scenarios.base import Testbed, connect_ports
from repro.switches.ovs_dpdk import OvsDpdk
from repro.traffic.moongen import MoonGenRx, MoonGenTx, saturating_rate

FLOW_COUNTS = (1, 128, 2048, 8192, 16384, 65536)


def measure_with_flows(flow_count: int, frame_size: int = 64):
    sim = Simulator()
    machine = Machine(sim)
    rngs = RngRegistry(1)
    switch = OvsDpdk(sim, rngs=rngs, bus=machine.node0.bus)
    sut_core = machine.node0.add_core("sut")

    gen0, gen1 = NicPort(sim, "g0"), NicPort(sim, "g1")
    sut0, sut1 = NicPort(sim, "s0"), NicPort(sim, "s1")
    connect_ports(gen0, sut0)
    connect_ports(gen1, sut1)
    switch.add_path(switch.attach_phy(sut0), switch.attach_phy(sut1))
    switch.bind_core(sut_core)

    tx = MoonGenTx(sim, gen0, saturating_rate(frame_size), frame_size, flow_count=flow_count)
    rx = MoonGenRx(sim, gen1, frame_size)
    tx.start(0.0)

    tb = Testbed(sim, machine, rngs, switch, sut_core, frame_size, scenario="ovs-flows")
    tb.meters.append(rx.meter)
    # Long warm-up: megaflow installation (one upcall per new flow) must
    # finish before the steady-state window opens.
    result = drive(tb, warmup_ns=3_000_000.0, measure_ns=5_000_000.0)
    lookups = switch.emc_hits + switch.emc_misses
    hit_rate = switch.emc_hits / lookups if lookups else 0.0
    return result.gbps, hit_rate, switch.upcalls


def main() -> int:
    print("=== OvS-DPDK flow-cache behaviour under flow-count pressure ===")
    print("(EMC capacity: 8192 exact-match entries, as in OvS 2.11)\n")
    rows = []
    for flows in FLOW_COUNTS:
        gbps, hit_rate, upcalls = measure_with_flows(flows)
        rows.append([flows, gbps, 100.0 * hit_rate, upcalls])
    print(
        format_table(
            ["flows", "throughput (Gbps)", "EMC hit rate (%)", "upcalls"],
            rows,
        )
    )
    print(
        "\nReading: with one flow the EMC always hits, matching the paper's\n"
        "8 Gbps -- the match/action pipeline itself is the cost.  Once the\n"
        "flow count exceeds the EMC, misses fall through to the megaflow\n"
        "classifier and throughput drops further; every new flow also costs\n"
        "one slow-path upcall."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
