"""Extending the library: model a new software switch and benchmark it.

The registry is an extension point: define a :class:`SoftwareSwitch`
subclass with its own cost parameters (and optionally behaviour hooks),
register it, and every scenario builder, measurement routine and table
renderer works with it unchanged.

This example sketches "TurboSwitch", a hypothetical DPDK switch with a
SIMD-optimised classifier (cheap per-packet cost) but a naive vhost-user
integration (expensive per-byte copies), then runs it through the
paper's methodology against two built-ins.

Usage::

    python examples/custom_switch.py
"""

from __future__ import annotations

import sys

from repro.analysis.tables import format_table
from repro.cpu.costmodel import Cost
from repro.measure.throughput import measure_throughput
from repro.scenarios import loopback, p2p, p2v
from repro.switches.base import SoftwareSwitch
from repro.switches.params import SwitchParams
from repro.switches.registry import create_switch, register_switch
from repro.vif.vhost_user import DEFAULT_VHOST_COSTS
from repro.vif.virtio import VifCosts

TURBO_PARAMS = SwitchParams(
    name="turboswitch",
    display_name="TurboSwitch",
    # SIMD classifier: half of BESS's per-packet work.
    proc=Cost(per_batch=40.0, per_packet=24.0),
    # ...but a naive vhost-user port ruins virtualised scenarios.
    vif_costs=VifCosts(
        host_tx=Cost(per_batch=200.0, per_packet=150.0, per_byte=1.2),
        host_rx=Cost(per_batch=200.0, per_packet=160.0, per_byte=1.2),
        guest_tx=DEFAULT_VHOST_COSTS.guest_tx,
        guest_rx=DEFAULT_VHOST_COSTS.guest_rx,
        host_copy_factor=1.0,
    ),
    jitter_sigma=0.05,
)


class TurboSwitch(SoftwareSwitch):
    """A minimal custom model: base mechanics, custom cost profile."""

    def __init__(self, sim, rngs=None, bus=None, params=TURBO_PARAMS):
        super().__init__(sim, params, rngs=rngs, bus=bus)


def main() -> int:
    register_switch("turboswitch", TurboSwitch, TURBO_PARAMS)

    contenders = ("turboswitch", "bess", "vpp")
    rows = []
    for name in contenders:
        p2p_gbps = measure_throughput(p2p.build, name, 64, bidirectional=True).gbps
        p2v_gbps = measure_throughput(p2v.build, name, 64).gbps
        chain = measure_throughput(loopback.build, name, 64, n_vnfs=2).gbps
        rows.append([name, p2p_gbps, p2v_gbps, chain])

    print("=== TurboSwitch vs built-ins (the paper's methodology) ===\n")
    print(
        format_table(
            ["switch", "p2p bidi 64B", "p2v uni 64B", "2-VNF chain 64B"],
            rows,
        )
    )
    print(
        "\nReading: a fast classifier wins the p2p column, but the naive\n"
        "vhost-user port loses every virtualised scenario -- the same\n"
        "design-space lesson the paper draws (Sec. 5.4): pick the switch\n"
        "for the NFV context, not the headline forwarding number."
    )
    turbo, bess, vpp = rows
    assert turbo[1] > bess[1], "TurboSwitch should win raw forwarding"
    assert turbo[3] < vpp[3], "...and lose service chaining"
    return 0


if __name__ == "__main__":
    sys.exit(main())
