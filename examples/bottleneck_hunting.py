"""Bottleneck hunting: watch *where* a switch loses its packets.

The paper infers bottlenecks from aggregate throughput ("the overhead
imposed by vhost-user", "packet copies between VALE ports").  The
simulated testbed can show them directly: this example attaches an
observability session (:mod:`repro.obs`) to a loopback chain, runs it at
saturating load and prints

* the cycle-attribution profile (where each packet's cycles go, per
  stage, diffed against the closed-form prediction),
* the queue/drop metrics along the chain, and
* the classic telemetry time-series view (queue growth over time),

which together localise the bottleneck.

Usage::

    python examples/bottleneck_hunting.py [switch] [n_vnfs]
"""

from __future__ import annotations

import sys

from repro.analysis.bottleneck import diff_attribution, stage_breakdown
from repro.analysis.tables import format_table
from repro.core.trace import Telemetry
from repro.measure.runner import drive
from repro.obs import observe
from repro.scenarios import loopback
from repro.switches.registry import params_for, switch_names


def main() -> int:
    switch_name = sys.argv[1] if len(sys.argv) > 1 else "vpp"
    n_vnfs = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    if switch_name not in switch_names():
        print(f"unknown switch {switch_name!r}")
        return 1

    tb = loopback.build(switch_name, n_vnfs=n_vnfs, frame_size=64)

    # The observability session: metrics registry + cycle profiler.
    obs = observe(tb)

    # Telemetry still earns its keep for *time series* -- queue growth
    # over the run, which a point-in-time metric snapshot cannot show.
    telemetry = Telemetry(tb.sim, period_ns=50_000.0)
    sut0, _ = tb.extras["sut_ports"]
    telemetry.watch_ring("NIC0 rx ring", sut0.rx_ring)
    telemetry.start()

    result = drive(tb)
    obs.finish(result)

    print(
        f"=== {params_for(switch_name).display_name}, {n_vnfs}-VNF loopback chain, "
        f"64B saturating input ===\n"
    )
    print(f"throughput: {result.gbps:.2f} Gbps\n")

    # --- where do the cycles go? ----------------------------------------
    report = obs.profile()
    observed = report.chain_cycles_per_packet()
    predicted = stage_breakdown(switch_name, "loopback", 64, n_vnfs=n_vnfs)
    diff = diff_attribution(observed, predicted)
    print(
        format_table(
            ["stage", "observed cyc/pkt", "closed-form", "ratio"],
            [
                [stage, round(cells["observed"], 1), round(cells["predicted"], 1),
                 f"{cells['ratio']:.2f}x"]
                for stage, cells in diff.items()
            ],
            title="cycle attribution (per chain traversal)",
        )
    )
    hottest = max(report.paths, key=lambda p: p.total_cycles)
    print(
        f"\nhottest path: {hottest.name} "
        f"({sum(hottest.cycles_per_packet().values()):.0f} cycles/pkt, "
        f"mean batch {hottest.mean_batch:.1f})"
    )

    # --- where do the packets die? ---------------------------------------
    registry = obs.registry
    rows = [
        [name, f"{registry.get(name).read():.0f}"]
        for name in registry.names()
        if name.endswith(".dropped") and registry.get(name).read() > 0
    ]
    print()
    if rows:
        print(format_table(["drop counter", "packets"], rows))
    else:
        print("no drops recorded along the chain")

    # --- and when? --------------------------------------------------------
    rx = telemetry.series["NIC0 rx ring"]
    print(
        f"\nNIC0 rx ring over time: mean {rx.mean:.0f}, p90 "
        f"{rx.percentile(90):.0f}, peak {rx.peak:.0f} slots"
    )

    busy = tb.sut_core.busy_ns
    utilisation = min(1.0, busy / result.duration_ns) if result.duration_ns else 0.0
    print(f"SUT core utilisation: {100 * utilisation:.1f}%")
    ingress_drops = registry.get("nic.sut-nic.p0.rx_ring.dropped").read()
    if utilisation > 0.95 and ingress_drops > 0:
        print(
            "\nDiagnosis: the SUT core is saturated and the loss happens at\n"
            "the NIC ingress ring -- the switch data path is the bottleneck,\n"
            "exactly the regime the paper's saturating-load methodology probes."
        )
    elif utilisation < 0.8:
        print(
            "\nDiagnosis: the SUT core has headroom; the constraint lies\n"
            "elsewhere (wire rate, guest apps, or interrupt moderation)."
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
