"""Bottleneck hunting: watch *where* a switch loses its packets.

The paper infers bottlenecks from aggregate throughput ("the overhead
imposed by vhost-user", "packet copies between VALE ports").  The
simulated testbed can show them directly: this example instruments a
loopback chain with telemetry probes on every queue and the SUT core,
runs it at saturating load, and prints a per-stage report -- occupancy,
drops and core utilisation -- that localises the bottleneck.

Usage::

    python examples/bottleneck_hunting.py [switch] [n_vnfs]
"""

from __future__ import annotations

import sys

from repro.analysis.tables import format_table
from repro.core.trace import Telemetry
from repro.measure.runner import drive
from repro.scenarios import loopback
from repro.switches.registry import params_for, switch_names


def main() -> int:
    switch_name = sys.argv[1] if len(sys.argv) > 1 else "vpp"
    n_vnfs = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    if switch_name not in switch_names():
        print(f"unknown switch {switch_name!r}")
        return 1

    tb = loopback.build(switch_name, n_vnfs=n_vnfs, frame_size=64)
    telemetry = Telemetry(tb.sim, period_ns=50_000.0)

    # Probe every queue along the chain, in traversal order.
    sut0, sut1 = tb.extras["sut_ports"]
    telemetry.watch_ring("NIC0 rx ring", sut0.rx_ring)
    telemetry.watch_ring_drops("NIC0 rx drops", sut0.rx_ring)
    for i, vm in enumerate(tb.vms, start=1):
        for vif in vm.interfaces:
            telemetry.watch_ring(f"{vif.name} to-guest", vif.to_guest)
            telemetry.watch_ring(f"{vif.name} to-host", vif.to_host)
    telemetry.watch_core_busy("SUT core", tb.sut_core)
    telemetry.start()

    result = drive(tb)
    print(
        f"=== {params_for(switch_name).display_name}, {n_vnfs}-VNF loopback chain, "
        f"64B saturating input ===\n"
    )
    print(f"throughput: {result.gbps:.2f} Gbps\n")

    rows = []
    for name, series in telemetry.series.items():
        if name == "SUT core":
            continue
        rows.append([name, series.mean, series.peak, series.last()])
    print(format_table(["queue", "mean depth", "peak depth", "final"], rows))

    utilisation = telemetry.utilization("SUT core")
    print(f"\nSUT core utilisation: {100 * utilisation:.1f}%")
    ingress_drops = telemetry.series["NIC0 rx drops"].last()
    print(f"NIC0 ingress drops: {ingress_drops:.0f} packets")
    if utilisation > 0.95 and ingress_drops > 0:
        print(
            "\nDiagnosis: the SUT core is saturated and the loss happens at\n"
            "the NIC ingress ring -- the switch data path is the bottleneck,\n"
            "exactly the regime the paper's saturating-load methodology probes."
        )
    elif utilisation < 0.8:
        print(
            "\nDiagnosis: the SUT core has headroom; the constraint lies\n"
            "elsewhere (wire rate, guest apps, or interrupt moderation)."
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
