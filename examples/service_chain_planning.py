"""Service-chain planning: which switch should steer *your* NFV chain?

The paper's central conclusion is that "no single software switch
prevails in all scenarios" -- the right choice depends on chain length,
packet size and direction.  This example takes a concrete deployment
(chain length, packet size, bidirectional or not) and ranks the seven
switches for it, reproducing the Sec. 5.4 decision process as runnable
code.

Usage::

    python examples/service_chain_planning.py [n_vnfs] [frame_size] [--bidi]
"""

from __future__ import annotations

import sys

from repro.analysis.tables import format_series, format_table
from repro.measure.throughput import measure_throughput
from repro.scenarios import loopback
from repro.switches.registry import ALL_SWITCHES, params_for
from repro.switches.taxonomy import USE_CASES
from repro.vm.machine import QemuCompatibilityError


def rank_switches(n_vnfs: int, frame_size: int, bidirectional: bool):
    results = {}
    for name in ALL_SWITCHES:
        try:
            result = measure_throughput(
                loopback.build, name, frame_size,
                bidirectional=bidirectional, n_vnfs=n_vnfs,
            )
            results[name] = result.gbps
        except QemuCompatibilityError:
            results[name] = None
    return results


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    n_vnfs = int(args[0]) if args else 3
    frame_size = int(args[1]) if len(args) > 1 else 256
    bidirectional = "--bidi" in sys.argv

    direction = "bidirectional" if bidirectional else "unidirectional"
    print(
        f"=== Planning a {n_vnfs}-VNF service chain "
        f"({frame_size}B, {direction}) ===\n"
    )

    results = rank_switches(n_vnfs, frame_size, bidirectional)
    ranked = sorted(
        ((name, gbps) for name, gbps in results.items() if gbps is not None),
        key=lambda item: item[1],
        reverse=True,
    )
    rows = []
    for rank, (name, gbps) in enumerate(ranked, start=1):
        rows.append([rank, params_for(name).display_name, gbps, USE_CASES[name][1]])
    for name, gbps in results.items():
        if gbps is None:
            rows.append(["-", params_for(name).display_name, None, USE_CASES[name][1]])
    print(format_table(["rank", "switch", "Gbps", "caveat (paper Table 5)"], rows))

    best = ranked[0][0]
    print(f"\nRecommendation: {params_for(best).display_name}")

    print("\nHow the winner scales with chain length:")
    lengths = [1, 2, 3, 4, 5]
    series = []
    for n in lengths:
        try:
            series.append(
                measure_throughput(
                    loopback.build, best, frame_size,
                    bidirectional=bidirectional, n_vnfs=n,
                ).gbps
            )
        except QemuCompatibilityError:
            series.append(None)
    print(format_series(params_for(best).display_name, [f"{n}VNF" for n in lengths], series))
    return 0


if __name__ == "__main__":
    sys.exit(main())
