"""Quickstart: measure one software switch on the simulated testbed.

Runs the paper's simplest experiment -- the p2p forwarding test of
Fig. 2a -- for a single switch, at the three paper frame sizes, and
prints throughput plus an RTT latency sweep.

Usage::

    python examples/quickstart.py [switch]

where ``switch`` is one of: bess, fastclick, ovs-dpdk, snabb, vpp, vale,
t4p4s (default: vpp).
"""

from __future__ import annotations

import sys

from repro.analysis.tables import ascii_bars, format_table
from repro.core.units import PAPER_FRAME_SIZES
from repro.measure.latency import LOAD_FRACTIONS, latency_sweep
from repro.measure.throughput import measure_throughput
from repro.scenarios import p2p
from repro.switches.registry import params_for, switch_names


def main() -> int:
    switch = sys.argv[1] if len(sys.argv) > 1 else "vpp"
    if switch not in switch_names():
        print(f"unknown switch {switch!r}; choose from {', '.join(sorted(switch_names()))}")
        return 1

    params = params_for(switch)
    print(f"=== {params.display_name} on the simulated 2x10GbE testbed ===\n")

    print("p2p throughput (saturating input, Sec. 5.2 methodology):")
    bars = {}
    for size in PAPER_FRAME_SIZES:
        uni = measure_throughput(p2p.build, switch, size)
        bidi = measure_throughput(p2p.build, switch, size, bidirectional=True)
        bars[f"{size}B uni"] = uni.gbps
        bars[f"{size}B bidi"] = bidi.gbps
    print(ascii_bars(bars))

    print("\np2p RTT latency at fractions of R+ (Sec. 5.3 methodology):")
    points = latency_sweep(p2p.build, switch, 64)
    rows = [
        [f"{fraction:.2f} R+", points[fraction].mean_us, points[fraction].std_us, len(points[fraction].sample)]
        for fraction in LOAD_FRACTIONS
    ]
    print(format_table(["load", "mean RTT (us)", "std (us)", "probes"], rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
