"""Appendix A, executable: configure each switch with its own control plane.

The paper's appendix lists, per switch, the exact configuration that
realises the p2p scenario -- a BESS script, a Click one-liner, VPP
l2patch commands, ovs-vsctl/ovs-ofctl invocations, vale-ctl commands, a
Snabb config object.  This example feeds those *verbatim* snippets to
the library's miniature control planes, then pushes traffic through each
switch to show the configuration took effect.

Usage::

    python examples/appendix_configs.py
"""

from __future__ import annotations

import sys

from repro.analysis.tables import format_table
from repro.core.engine import Simulator
from repro.core.packet import Packet
from repro.cpu.cores import Core
from repro.nic.port import NicPort
from repro.switches.control import (
    BessScript,
    OvsCtl,
    SnabbConfig,
    ValeCtl,
    VppCli,
    apply_click_config,
)
from repro.switches.registry import create_switch


def testbed(switch_name):
    sim = Simulator()
    switch = create_switch(switch_name, sim)
    p0, p1 = NicPort(sim, "p0"), NicPort(sim, "p1")
    peer0, peer1 = NicPort(sim, "peer0"), NicPort(sim, "peer1")
    p0.connect(peer0)
    p1.connect(peer1)
    return sim, switch, p0, p1


def run_traffic(sim, switch, src, dst, n=64):
    received = []
    dst.peer.sink = received.extend
    switch.bind_core(Core(sim, "sut"))
    src.rx_ring.push_batch([Packet() for _ in range(n)])
    sim.run_until(5_000_000)
    return len(received)


def configure_bess(switch, p0, p1):
    BessScript(switch, ports={0: p0, 1: p1}).run(
        """
        inport::PMDPort(port_id=0)
        outport::PMDPort(port_id=1)
        in0::QueueInc(port=inport, qid=0)
        out0::QueueOut(port=outport, qid=0)
        in0 -> out0
        """
    )
    return "bessctl script (PMDPort/QueueInc/QueueOut)"


def configure_fastclick(switch, p0, p1):
    apply_click_config(switch, "FromDPDKDevice(0)->ToDPDKDevice(1)", {"0": p0, "1": p1})
    return "Click: FromDPDKDevice(0)->ToDPDKDevice(1)"


def configure_vpp(switch, p0, p1):
    VppCli(switch, {"port0": p0, "port1": p1}).exec("test l2patch rx port0 tx port1")
    return "vppctl: test l2patch rx port0 tx port1"


def configure_ovs(switch, p0, p1):
    ctl = OvsCtl(switch, {"dpdk0": p0, "dpdk1": p1})
    ctl.vsctl("add-br br0")
    ctl.vsctl("add-port br0 dpdk0")
    ctl.vsctl("add-port br0 dpdk1")
    ctl.ofctl_add_flow("br0", "in_port=1,actions=output:2")
    return "ovs-vsctl add-br/add-port + ovs-ofctl add-flow"


def configure_vale(switch, p0, p1):
    ctl = ValeCtl(switch, {"p1": p0, "p2": p1})
    ctl.exec("vale-ctl -a vale0:p1")
    ctl.exec("vale-ctl -a vale0:p2")
    return "vale-ctl -a vale0:p1 / vale-ctl -a vale0:p2"


def configure_snabb(switch, p0, p1):
    config = SnabbConfig(switch)
    config.app("nic1", p0)
    config.app("nic2", p1)
    config.link("nic1.tx -> nic2.rx")
    return 'config.app x2 + config.link("nic1.tx -> nic2.rx")'


def configure_t4p4s(switch, p0, p1):
    # t4p4s forwards on its predefined dmac table (Appendix A.1): the
    # model installs entries as paths are declared.
    a0 = switch.attach_phy(p0)
    a1 = switch.attach_phy(p1)
    switch.add_path(a0, a1)
    return "l2fwd P4 table: dmac -> output port"


CONFIGURATORS = {
    "bess": configure_bess,
    "fastclick": configure_fastclick,
    "vpp": configure_vpp,
    "ovs-dpdk": configure_ovs,
    "vale": configure_vale,
    "snabb": configure_snabb,
    "t4p4s": configure_t4p4s,
}


def main() -> int:
    rows = []
    for name, configure in CONFIGURATORS.items():
        sim, switch, p0, p1 = testbed(name)
        description = configure(switch, p0, p1)
        forwarded = run_traffic(sim, switch, p0, p1)
        rows.append([name, description, f"{forwarded}/64"])
    print("=== Appendix A p2p configurations, executed ===\n")
    print(format_table(["switch", "configured via", "forwarded"], rows))
    assert all(row[2] == "64/64" for row in rows)
    print("\nAll seven switches forward the full burst under their own")
    print("control plane, matching the paper's appendix.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
