"""Fluid validation tier: A/B fluid vs exact, tolerance-gated.

Drives a switch grid twice over the same measurement window -- once
event-by-event (the exact tiers) and once with the fluid tier engaged --
and gates the per-cell relative throughput error at the declared fluid
tolerance (``REPRO_FLUID_TOLERANCE``, default 5%).  Also asserts the
engagement contract: every gated cell must actually engage the fluid
tier (a silent decline would A/B exact against exact and prove nothing),
and runs that must stay exact (fault plans, per-flow telemetry) must
decline with their stable reasons.

Writes a JSON artifact (``--out``) with per-cell errors and speedups for
the CI ``fluid-validation`` job.

Usage: ``PYTHONPATH=src python tools/fluid_check.py [--out fluid.json]
[--measure-ns 2e8]``
"""

import argparse
import json
import sys
import time

sys.path.insert(0, "src")

from repro.core.fluid import fluid_tolerance, try_fluid
from repro.measure.runner import drive
from repro.scenarios import p2p, p2v, v2v

#: Three-switch grid spanning the cost model's extremes (fastest and
#: slowest exact switches plus the mid-field DPDK reference).
GRID = [
    ("vpp", "p2p", p2p.build, {}, 3_000_000.0),
    ("vpp", "p2p", p2p.build, {}, None),  # saturating
    ("ovs-dpdk", "p2v", p2v.build, {}, 1_000_000.0),
    ("fastclick", "v2v", v2v.build, {}, 800_000.0),
]


def run(build, switch, kwargs, rate, measure_ns, fluid):
    tb = build(switch, frame_size=64, rate_pps=rate, seed=1, **kwargs)
    t0 = time.perf_counter()
    res = drive(tb, measure_ns=measure_ns, fluid=fluid)
    return res, time.perf_counter() - t0


def check_declines():
    """Runs that must stay exact decline with their stable reasons."""
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultEvent, FaultPlan

    failures = []
    tb = p2p.build("vpp", frame_size=64)
    plan = FaultPlan.of(
        FaultEvent.from_dict(
            {"kind": "nic-link-flap", "target": "sut-nic.p1", "at_ns": 1.2e6,
             "duration_ns": 3e5}
        )
    )
    FaultInjector(tb, plan).arm()
    report = try_fluid(tb, 6e5, 6e7)
    if report.engaged or report.reason != "fault-plan-active":
        failures.append(f"fault plan: expected decline, got {report.describe()}")
    tb = p2p.build("vpp", frame_size=64)
    report = try_fluid(tb, 6e5, 1.5e6)
    if report.engaged or report.reason != "span-too-short":
        failures.append(f"short span: expected decline, got {report.describe()}")
    return failures


def check_hour_scale(min_speedup: float):
    """Hour-scale acceptance: fluid covers a 1-hour window >= 50x faster.

    The fluid side really simulates the hour (8 ms exact calibration +
    extrapolation); the exact comparator runs a 0.5 s window and its
    wall-clock extrapolates linearly to the hour -- honest for this
    workload, whose event count is linear in the window at a fixed
    offered rate.  The rates must agree within tolerance (both estimate
    the same stationary throughput).
    """
    HOUR_NS = 3.6e12
    EXACT_NS = 5e8
    tolerance = fluid_tolerance()
    r_ex, w_ex = run(p2p.build, "vpp", {}, 3_000_000.0, EXACT_NS, fluid=False)
    r_fl, w_fl = run(p2p.build, "vpp", {}, 3_000_000.0, HOUR_NS, fluid=True)
    engaged = r_fl.fluid is not None and r_fl.fluid.engaged
    rel_err = abs(r_fl.mpps - r_ex.mpps) / r_ex.mpps if r_ex.mpps > 0 else 0.0
    est_exact_wall = w_ex * (HOUR_NS / EXACT_NS)
    speedup = est_exact_wall / w_fl if w_fl > 0 else float("inf")
    ok = engaged and rel_err <= tolerance and speedup >= min_speedup
    print(
        f"{'OK ' if ok else 'FAIL'} hour-scale vpp/p2p: fluid_wall={w_fl:.2f}s "
        f"est_exact_wall={est_exact_wall:.0f}s x{speedup:.0f} "
        f"(floor x{min_speedup:.0f}) err={rel_err:.4%} (tol {tolerance:.1%})"
    )
    cell = {
        "cell": "hour-scale/vpp/p2p",
        "engaged": engaged,
        "fluid": r_fl.fluid.describe() if r_fl.fluid else "none",
        "mpps_exact": r_ex.mpps,
        "mpps_fluid": r_fl.mpps,
        "rel_error": rel_err,
        "tolerance": tolerance,
        "wall_exact_s": est_exact_wall,
        "wall_fluid_s": w_fl,
        "speedup": speedup,
        "min_speedup": min_speedup,
        "ok": ok,
    }
    return cell, (0 if ok else 1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default=None, help="JSON artifact path")
    parser.add_argument("--measure-ns", type=float, default=2e8)
    parser.add_argument(
        "--hour-scale", action="store_true",
        help="also gate the hour-scale speedup (>= --min-speedup)",
    )
    parser.add_argument("--min-speedup", type=float, default=50.0)
    args = parser.parse_args()

    tolerance = fluid_tolerance()
    cells = []
    failures = 0
    for switch, scenario, build, kwargs, rate in GRID:
        label = f"{switch}/{scenario}/{'saturating' if rate is None else 'sub-capacity'}"
        r_ex, w_ex = run(build, switch, kwargs, rate, args.measure_ns, fluid=False)
        r_fl, w_fl = run(build, switch, kwargs, rate, args.measure_ns, fluid=True)
        engaged = r_fl.fluid is not None and r_fl.fluid.engaged
        rel_err = (
            abs(r_fl.mpps - r_ex.mpps) / r_ex.mpps if r_ex.mpps > 0 else 0.0
        )
        speedup = w_ex / w_fl if w_fl > 0 else float("inf")
        ok = engaged and rel_err <= tolerance
        if not ok:
            failures += 1
        cells.append(
            {
                "cell": label,
                "engaged": engaged,
                "fluid": r_fl.fluid.describe() if r_fl.fluid else "none",
                "mpps_exact": r_ex.mpps,
                "mpps_fluid": r_fl.mpps,
                "rel_error": rel_err,
                "tolerance": tolerance,
                "wall_exact_s": w_ex,
                "wall_fluid_s": w_fl,
                "speedup": speedup,
                "ok": ok,
            }
        )
        print(
            f"{'OK ' if ok else 'FAIL'} {label:28s} exact={r_ex.mpps:.4f} "
            f"fluid={r_fl.mpps:.4f} Mpps err={rel_err:.4%} "
            f"(tol {tolerance:.1%}) x{speedup:.0f}"
        )
        if not engaged:
            print(f"  fluid did not engage: {r_fl.fluid.describe() if r_fl.fluid else 'no report'}")

    if args.hour_scale:
        cell, failed = check_hour_scale(args.min_speedup)
        cells.append(cell)
        failures += failed

    decline_failures = check_declines()
    for failure in decline_failures:
        print(f"FAIL decline contract: {failure}")
    failures += len(decline_failures)

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(
                {
                    "measure_ns": args.measure_ns,
                    "tolerance": tolerance,
                    "cells": cells,
                    "decline_failures": decline_failures,
                    "failures": failures,
                },
                fh,
                indent=2,
            )
        print(f"wrote {args.out}")
    print("failures:", failures)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
