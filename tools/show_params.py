"""Dump the calibrated parameter set as reference tables.

Usage::

    python tools/show_params.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.switches.params import ALL_PARAMS


def main() -> None:
    rows = []
    for name in sorted(ALL_PARAMS):
        p = ALL_PARAMS[name]
        rows.append(
            [
                name,
                p.batch_size,
                f"{p.nic_rx.per_packet:.0f}/{p.nic_rx.per_byte:.2f}",
                f"{p.proc.per_packet:.0f}/{p.proc.per_byte:.2f}",
                f"{p.nic_tx.per_packet:.0f}/{p.nic_tx.per_byte:.2f}",
                f"{p.vif_costs.host_tx.per_packet:.0f}/{p.vif_costs.host_tx.per_byte:.2f}",
                f"{p.vif_costs.host_rx.per_packet:.0f}/{p.vif_costs.host_rx.per_byte:.2f}",
            ]
        )
    print(
        format_table(
            ["switch", "batch", "nic_rx pkt/B", "proc pkt/B", "nic_tx pkt/B", "vif_tx pkt/B", "vif_rx pkt/B"],
            rows,
            title="Calibrated cycle costs (see docs/calibration.md)",
        )
    )
    print()
    rows = []
    for name in sorted(ALL_PARAMS):
        p = ALL_PARAMS[name]
        rows.append(
            [
                name,
                "interrupt" if p.interrupt_driven else "poll",
                "pipeline" if p.pipeline else "RTC",
                f"{p.jitter_sigma:.2f}/{p.jitter_sigma_vif:.2f}",
                p.nic_rx_slots,
                p.vring_slots,
                f"{p.batch_wait_ns / 1000:.0f}us" if p.batch_wait_ns else "-",
                f"{p.tx_drain_ns / 1000:.0f}us" if p.tx_drain_ns else "-",
                p.max_vms if p.max_vms is not None else "-",
            ]
        )
    print(
        format_table(
            ["switch", "I/O", "model", "sigma/vif", "rx ring", "vring", "batch wait", "tx drain", "max VMs"],
            rows,
            title="Mechanism configuration",
        )
    )


if __name__ == "__main__":
    main()
