"""Generate the statistical-soundness section of EXPERIMENTS.md.

Usage::

    python tools/soundness_report.py

Runs, per switch:

1. a 5-trial percentile NDR search (p2p, 64 B, production windows) and
   reports the bootstrap CI on the NDR rate;
2. a repeat-scheduled trial campaign over the 64 B paper grid (p2p, p2v,
   v2v, loopback 1-5 VNFs) with CI-converged early stopping, and reports
   the per-switch verdict census plus every point the instability
   detector refused to average;
3. an *audit* pass at short measurement windows (200 us warmup /
   800 us measure) with early stopping disabled (all 6 trials, CI
   target 0), where trial perturbations are no longer averaged out --
   the regime the instability detector exists for.

Prints markdown to stdout; paste into EXPERIMENTS.md.
"""

from __future__ import annotations

import time

from repro.campaign.spec import RunSpec
from repro.measure.ndr import ndr_search
from repro.measure.soundness import TrialPolicy, run_trial_campaign
from repro.scenarios import p2p
from repro.switches.registry import ALL_SWITCHES

SHORT = dict(warmup_ns=200_000, measure_ns=800_000)

# BESS tops out at 3 chained VMs (paper footnote 5); the campaign marks
# deeper chains inapplicable rather than quarantining them.
GRID = [("p2p", {}), ("p2v", {}), ("v2v", {})] + [
    ("loopback", {"n_vnfs": n}) for n in range(1, 6)
]


def grid_specs(switch: str, **windows) -> list[RunSpec]:
    return [
        RunSpec(scenario, switch, seed=1, **kwargs, **windows)
        for scenario, kwargs in GRID
    ]


def ndr_row(switch: str) -> str:
    # tolerance_packets forgives window-edge effects (batches straddling
    # the boundary); the strict 0 default turns them into phantom loss.
    result = ndr_search(
        p2p.build, switch, 64, iterations=7, trials=5, tolerance_packets=64
    )
    low, high = result.ci
    mpps = result.ndr_pps / 1e6
    width = (high - low) / 1e6
    rel = width / mpps if mpps else 0.0
    return (
        f"| {switch} | {mpps:.3f} | {low / 1e6:.3f}-{high / 1e6:.3f} "
        f"| {rel * 100:.2f}% | {result.trials_per_point} |"
    )


def campaign_rows(policy: TrialPolicy, **windows):
    rows, flagged = [], []
    for switch in ALL_SWITCHES:
        result = run_trial_campaign(
            grid_specs(switch, **windows), policy, name=f"soundness-{switch}"
        )
        points = [p for p in result.points if p.status != "inapplicable"]
        verdicts = [p.summary.verdict for p in points]
        trials = sum(p.summary.n for p in points)
        widths = [
            p.summary.rel_half_width
            for p in points
            if p.summary.verdict == "stable"
        ]
        rows.append(
            f"| {switch} | {len(points)} | {trials} "
            f"| {verdicts.count('stable')} | {len(result.quarantined)} "
            f"| {max(widths) * 100 if widths else 0.0:.2f}% |"
        )
        flagged += [
            f"- `{p.spec.label}` -- **{p.summary.verdict}**: {p.summary.reason}"
            for p in points
            if p.quarantined
        ]
    return rows, flagged


def main() -> int:
    start = time.time()
    policy = TrialPolicy(n_min=3, n_max=6, rel_ci_target=0.02)

    print("## Beyond the paper — trial-to-trial stability (repro.measure.soundness)")
    print()
    print("### 5-trial percentile NDR, p2p 64 B (production windows)")
    print()
    print("| switch | NDR (Mpps) | 95% bootstrap CI | rel. width | trials |")
    print("|---|---|---|---|---|")
    for switch in ALL_SWITCHES:
        print(ndr_row(switch))
    print()

    print("### Repeat-scheduled 64 B grid, production windows")
    print()
    print("| switch | points | trials spent | stable | quarantined | worst rel. CI |")
    print("|---|---|---|---|---|---|")
    rows, flagged = campaign_rows(policy)
    for row in rows:
        print(row)
    print()
    if flagged:
        print("Quarantined points:")
        print()
        print("\n".join(flagged))
    else:
        print(
            "No quarantined points: at production windows every grid point"
            " converges within the CI target."
        )
    print()

    print("### Audit at short windows (200 us / 800 us, forced n=6)")
    print()
    print("| switch | points | trials spent | stable | quarantined | worst rel. CI |")
    print("|---|---|---|---|---|---|")
    audit = TrialPolicy(n_min=6, n_max=6, rel_ci_target=0.0)
    rows, flagged = campaign_rows(audit, **SHORT)
    for row in rows:
        print(row)
    print()
    if flagged:
        print("Quarantined points (short windows):")
        print()
        print("\n".join(flagged))
    print()
    print(f"*Generated in {time.time() - start:.0f} s of wall time.*")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
