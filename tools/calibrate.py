"""Calibration harness: run the full measurement grid, print measured vs
paper-reported values.

Usage::

    python tools/calibrate.py [--throughput] [--latency] [--loopback]

Used during development to tune repro.switches.params; the benches reuse
the same code paths.
"""

from __future__ import annotations

import argparse
import math
import time

from repro.analysis.tables import format_table
from repro.measure.latency import latency_sweep
from repro.measure.throughput import measure_throughput
from repro.scenarios import loopback, p2p, p2v, v2v
from repro.switches.registry import ALL_SWITCHES
from repro.vm.machine import QemuCompatibilityError

# Paper values (64B / 256B / 1024B); None = not stated numerically.
PAPER_P2P_UNI = {"bess": 10, "fastclick": 10, "vpp": 10, "ovs-dpdk": 8.05, "snabb": 8.9, "vale": 5.56, "t4p4s": 5.6}
PAPER_P2P_BIDI = {"bess": 16, "fastclick": 11.5, "vpp": 11, "ovs-dpdk": 8.05, "snabb": 8.9, "vale": 5.6, "t4p4s": 5.6}
PAPER_P2V_UNI = {"bess": 10, "fastclick": 7.0, "vpp": 6.9, "ovs-dpdk": 6.0, "snabb": 5.97, "vale": 5.77, "t4p4s": 4.04}
PAPER_P2V_BIDI64 = {"bess": 11.38, "vpp": 5.9}
PAPER_V2V_UNI = {"vale": 10.5, "snabb": 6.42}
PAPER_TABLE3_P2P = {
    "bess": (4.0, 4.6, 6.4),
    "fastclick": (5.3, 7.8, 8.4),
    "ovs-dpdk": (4.3, 5.2, 9.6),
    "snabb": (7.3, 11.3, 22),
    "vpp": (4.5, 5.9, 13.1),
    "vale": (32, 34, 59),
    "t4p4s": (32, 31, 174),
}
PAPER_TABLE4 = {"bess": 37, "fastclick": 45, "ovs-dpdk": 43, "snabb": 67, "vpp": 42, "vale": 21, "t4p4s": 70}


def throughput_grid() -> None:
    for scenario, build, paper_uni in (
        ("p2p", p2p.build, PAPER_P2P_UNI),
        ("p2v", p2v.build, PAPER_P2V_UNI),
        ("v2v", v2v.build, PAPER_V2V_UNI),
    ):
        rows = []
        for name in ALL_SWITCHES:
            row = [name]
            for size in (64, 256, 1024):
                for bidi in (False, True):
                    r = measure_throughput(build, name, size, bidirectional=bidi)
                    row.append(r.gbps)
            row.append(paper_uni.get(name, math.nan))
            rows.append(row)
        print(
            format_table(
                ["switch", "64u", "64b", "256u", "256b", "1024u", "1024b", "paper64u"],
                rows,
                title=f"== {scenario} throughput (Gbps) ==",
            )
        )
        print()
    # VPP reversed-path probe
    r = measure_throughput(p2v.build, "vpp", 64, reversed_path=True)
    print(f"VPP p2v reversed 64B: {r.gbps:.2f} Gbps (paper: 5.59)\n")


def loopback_grid() -> None:
    for size in (64, 256, 1024):
        for bidi in (False, True):
            rows = []
            for name in ALL_SWITCHES:
                row = [name]
                for n in range(1, 6):
                    try:
                        r = measure_throughput(loopback.build, name, size, bidirectional=bidi, n_vnfs=n)
                        row.append(r.gbps)
                    except QemuCompatibilityError:
                        row.append(None)
                rows.append(row)
            direction = "bidi" if bidi else "uni"
            print(
                format_table(
                    ["switch", "1", "2", "3", "4", "5"],
                    rows,
                    title=f"== loopback {direction} {size}B (Gbps) ==",
                )
            )
            print()


def latency_grid() -> None:
    rows = []
    for name in ALL_SWITCHES:
        points = latency_sweep(p2p.build, name, 64)
        paper = PAPER_TABLE3_P2P.get(name, (math.nan,) * 3)
        rows.append(
            [
                name,
                points[0.10].mean_us, paper[0],
                points[0.50].mean_us, paper[1],
                points[0.99].mean_us, paper[2],
            ]
        )
    print(
        format_table(
            ["switch", "0.1R+", "paper", "0.5R+", "paper", "0.99R+", "paper"],
            rows,
            title="== p2p latency (us) vs Table 3 ==",
        )
    )
    print()
    from repro.measure.runner import drive

    rows = []
    for name in ALL_SWITCHES:
        tb = v2v.build_latency(name)
        result = drive(tb, measure_ns=4_000_000.0)
        mean = result.latency.mean_us if result.latency and len(result.latency) else math.nan
        rows.append([name, mean, PAPER_TABLE4[name]])
    print(format_table(["switch", "RTT", "paper"], rows, title="== v2v latency (us) vs Table 4 =="))


def loopback_latency_grid() -> None:
    for n in (1, 2, 3, 4):
        rows = []
        for name in ALL_SWITCHES:
            try:
                points = latency_sweep(loopback.build, name, 64, n_vnfs=n)
                rows.append([name, points[0.10].mean_us, points[0.50].mean_us, points[0.99].mean_us])
            except QemuCompatibilityError:
                rows.append([name, None, None, None])
        print(
            format_table(
                ["switch", "0.1R+", "0.5R+", "0.99R+"],
                rows,
                title=f"== loopback-{n} latency (us) vs Table 3 ==",
            )
        )
        print()


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--throughput", action="store_true")
    parser.add_argument("--loopback", action="store_true")
    parser.add_argument("--latency", action="store_true")
    parser.add_argument("--loopback-latency", action="store_true")
    args = parser.parse_args()
    run_all = not any(vars(args).values())
    t0 = time.time()
    if args.throughput or run_all:
        throughput_grid()
    if args.loopback or run_all:
        loopback_grid()
    if args.latency or run_all:
        latency_grid()
    if args.loopback_latency or run_all:
        loopback_latency_grid()
    print(f"[calibrate] total wall time: {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main()
