"""Capture a canonical stats snapshot of the tier-1 scenario matrix.

Used to verify that representation-level changes (flyweight packet
blocks, scheduler fast paths) leave every observable figure bit-identical:

    python tools/golden_stats.py capture golden.json
    ... make changes ...
    python tools/golden_stats.py diff golden.json

Every float is serialised via ``repr`` so the comparison is exact
(bit-identical), not approximate.
"""

from __future__ import annotations

import json
import sys

from repro.measure.latency import measure_latency_at
from repro.measure.runner import drive
from repro.scenarios import loopback, p2p, p2v, v2v
from repro.switches.registry import switch_names
from repro.vm.machine import QemuCompatibilityError

BUILDERS = {"p2p": p2p.build, "p2v": p2v.build, "v2v": v2v.build, "loopback": loopback.build}


def _canon(value):
    if isinstance(value, float):
        return repr(value)
    return value


def _run_stats(tb, result) -> dict:
    stats = {
        "gbps": [_canon(g) for g in result.per_direction_gbps],
        "mpps": [_canon(m) for m in result.per_direction_mpps],
        "events": tb.sim.events_executed,
        "forwarded": tb.switch.total_forwarded,
        "meter_packets": [m.packets for m in tb.meters],
        "meter_bytes": [m.bytes for m in tb.meters],
        "warmup_packets": [m.warmup_packets for m in tb.meters],
        "ring_drops": [
            (p.input.input_ring.name, p.input.input_ring.dropped, p.input.input_ring.enqueued)
            for p in tb.switch.paths
        ],
        "path_forwarded": [p.forwarded for p in tb.switch.paths],
    }
    ports = tb.extras.get("sut_ports") or ()
    stats["port_tx"] = [
        (p.name, p.tx_packets, p.tx_bytes, p.tx_dropped, p.driver_drops, p.rx_packets)
        for p in ports
    ]
    if result.latency is not None and len(result.latency):
        lat = result.latency
        stats["latency"] = {
            "n": len(lat),
            "mean_us": _canon(lat.mean_us),
            "std_us": _canon(lat.std_us),
            "p50": _canon(lat.percentile_us(50)),
            "p99": _canon(lat.percentile_us(99)),
            "min": _canon(lat.min_us),
            "max": _canon(lat.max_us),
        }
    return stats


def capture() -> dict:
    golden: dict = {}
    for scenario, build in BUILDERS.items():
        for switch in switch_names():
            for bidi in (False, True):
                if scenario == "loopback" and bidi:
                    continue
                key = f"{scenario}/{switch}/{'bidi' if bidi else 'uni'}"
                try:
                    kwargs = {} if scenario == "loopback" else {"bidirectional": bidi}
                    tb = build(switch, frame_size=64, **kwargs)
                except QemuCompatibilityError:
                    continue
                result = drive(tb)
                golden[key] = _run_stats(tb, result)
                print(f"  {key}: ok", file=sys.stderr)
    # Latency runs (probe materialisation + timestamp paths).
    for scenario, build in (("p2p", p2p.build), ("v2v", v2v.build)):
        for switch in ("vpp", "ovs-dpdk", "vale"):
            key = f"latency/{scenario}/{switch}"
            if scenario == "p2p":
                point = measure_latency_at(
                    build, switch, 64, rate_pps=2_000_000.0, fraction=0.5
                )
                lat = point.sample
            else:
                tb = v2v.build_latency(switch)
                result = drive(tb, measure_ns=4_000_000.0)
                lat = result.latency
            golden[key] = {
                "n": len(lat),
                "mean_us": _canon(lat.mean_us),
                "p99": _canon(lat.percentile_us(99)) if len(lat) else None,
            }
            print(f"  {key}: ok ({len(lat)} samples)", file=sys.stderr)
    # One observed run: metrics snapshot must be bit-identical too.
    from repro.obs.session import ObsConfig, observe

    tb = p2p.build("ovs-dpdk")
    obs = observe(tb, ObsConfig(trace=True, metrics=True, profile=True))
    result = drive(tb)
    obs.finish(result)
    snap = obs.metrics_snapshot()
    golden["observed/p2p/ovs-dpdk"] = json.loads(
        json.dumps(snap, default=repr, sort_keys=True)
    )
    print("  observed/p2p/ovs-dpdk: ok", file=sys.stderr)
    return golden


def main() -> int:
    mode, path = sys.argv[1], sys.argv[2]
    if mode == "capture":
        with open(path, "w") as fh:
            json.dump(capture(), fh, indent=1, sort_keys=True)
        print(f"captured -> {path}")
        return 0
    with open(path) as fh:
        golden = json.load(fh)
    current = json.loads(json.dumps(capture(), sort_keys=True))
    # events_executed is an engine performance counter, not a measurement:
    # optimisations legitimately remove no-op events.  Everything else is
    # compared bit-for-bit.
    for snap in (*golden.values(), *current.values()):
        if isinstance(snap, dict):
            snap.pop("events", None)
    failures = 0
    for key in sorted(golden):
        if key not in current:
            print(f"MISSING {key}")
            failures += 1
        elif golden[key] != current[key]:
            print(f"DIFF {key}")
            print(f"  golden:  {json.dumps(golden[key], sort_keys=True)[:400]}")
            print(f"  current: {json.dumps(current[key], sort_keys=True)[:400]}")
            failures += 1
    print(f"{len(golden) - failures}/{len(golden)} bit-identical")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
