"""Generate EXPERIMENTS.md: paper-reported vs harness-measured values for
every table and figure in the paper's evaluation section.

Usage::

    python tools/make_experiments.py [output_path]

Runs the complete measurement grid (several minutes of wall clock) with
the production windows and writes a markdown report.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.analysis.paper_values import (
    BESS_P2V_BIDI_64B,
    FIG4A_P2P_UNI_64B,
    FIG4B_P2V_UNI_64B,
    FIG4C_V2V_UNI_64B,
    TABLE3,
    TABLE4,
    VALE_V2V_BIDI_1024B,
    VPP_P2V_BIDI_64B,
    VPP_P2V_REVERSED_64B,
)
from repro.core.units import PAPER_FRAME_SIZES
from repro.measure.latency import LOAD_FRACTIONS, latency_sweep, measure_latency_at
from repro.measure.runner import drive
from repro.measure.throughput import measure_throughput
from repro.scenarios import loopback, p2p, p2v, v2v
from repro.switches.registry import ALL_SWITCHES, params_for
from repro.vm.machine import QemuCompatibilityError


def fmt(value, digits=2):
    if value is None:
        return "-"
    if isinstance(value, float) and value != value:
        return "-"
    return f"{value:.{digits}f}" if isinstance(value, float) else str(value)


def md_table(headers, rows):
    out = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    for row in rows:
        out.append("| " + " | ".join(fmt(c) for c in row) + " |")
    return "\n".join(out)


def display(name):
    return params_for(name).display_name


def fig1_section():
    rows = []
    for name in ALL_SWITCHES:
        max_tput = measure_throughput(p2p.build, name, 64, bidirectional=True)
        point = measure_latency_at(
            p2p.build, name, 64,
            rate_pps=0.95 * max_tput.mpps * 1e6 / 2, fraction=0.95,
            bidirectional=True,
        )
        rows.append([display(name), max_tput.gbps, point.mean_us, point.std_us])
    corr = float(np.corrcoef(
        [r[1] for r in rows], [r[2] for r in rows]
    )[0, 1])
    return (
        "## Fig. 1 — motivating scatter (bidirectional p2p, 64 B, latency @0.95×max)\n\n"
        + md_table(["switch", "max throughput (Gbps)", "mean RTT (µs)", "std RTT (µs)"], rows)
        + f"\n\nThroughput/latency correlation: **{corr:.2f}** "
        "(paper: negatively correlated — the fastest switch is also the lowest-latency one). "
        "The std-vs-mean panel shows no single pattern, as in the paper.\n"
    )


def throughput_grid_section(title, build, paper_uni, extra=""):
    rows = []
    for name in ALL_SWITCHES:
        row = [display(name)]
        for size in PAPER_FRAME_SIZES:
            for bidi in (False, True):
                row.append(measure_throughput(build, name, size, bidirectional=bidi).gbps)
        row.append(paper_uni.get(name))
        rows.append(row)
    headers = ["switch", "64u", "64b", "256u", "256b", "1024u", "1024b", "paper 64u"]
    return f"## {title}\n\n" + md_table(headers, rows) + "\n" + extra


def fig4b_extra():
    reversed_vpp = measure_throughput(p2v.build, "vpp", 64, reversed_path=True).gbps
    bess_bidi = measure_throughput(p2v.build, "bess", 64, bidirectional=True).gbps
    vpp_bidi = measure_throughput(p2v.build, "vpp", 64, bidirectional=True).gbps
    return (
        "\nAdditional Sec. 5.2 anchors: "
        f"VPP reversed path (VM→NIC, 64 B) measured **{reversed_vpp:.2f}** vs paper {VPP_P2V_REVERSED_64B}; "
        f"BESS bidi 64 B measured **{bess_bidi:.2f}** vs paper {BESS_P2V_BIDI_64B}; "
        f"VPP bidi 64 B measured **{vpp_bidi:.2f}** vs paper {VPP_P2V_BIDI_64B}.\n"
    )


def fig4c_extra():
    uni = measure_throughput(v2v.build, "vale", 1024).gbps
    bidi = measure_throughput(v2v.build, "vale", 1024, bidirectional=True).gbps
    return (
        f"\nVALE 1024 B v2v: uni **{uni:.1f}** Gbps, bidi **{bidi:.1f}** Gbps "
        f"(ratio {bidi / uni:.2f}; paper: bidi 35 Gbps = 64% of uni — "
        f"paper bidi value {VALE_V2V_BIDI_1024B}).\n"
    )


def loopback_section(bidirectional):
    chains = (1, 2, 3, 4, 5)
    parts = []
    for size in PAPER_FRAME_SIZES:
        rows = []
        for name in ALL_SWITCHES:
            row = [display(name)]
            for n in chains:
                try:
                    row.append(
                        measure_throughput(
                            loopback.build, name, size,
                            bidirectional=bidirectional, n_vnfs=n,
                        ).gbps
                    )
                except QemuCompatibilityError:
                    row.append(None)
            rows.append(row)
        parts.append(f"### {size} B\n\n" + md_table(
            ["switch"] + [f"{n} VNF" for n in chains], rows
        ))
    label = "Fig. 6 — loopback bidirectional" if bidirectional else "Fig. 5 — loopback unidirectional"
    return f"## {label} throughput (Gbps)\n\n" + "\n\n".join(parts) + "\n"


def table3_section():
    parts = []
    for scenario in ("p2p", 1, 2, 3, 4):
        rows = []
        for name in ALL_SWITCHES:
            paper = TABLE3[name][scenario]
            if scenario == "p2p":
                points = latency_sweep(p2p.build, name, 64)
            else:
                try:
                    points = latency_sweep(loopback.build, name, 64, n_vnfs=scenario)
                except QemuCompatibilityError:
                    points = None
            measured = (
                [points[f].mean_us for f in LOAD_FRACTIONS] if points else [None] * 3
            )
            paper_cells = list(paper) if paper else [None] * 3
            rows.append([display(name), *measured, *paper_cells])
        label = "p2p" if scenario == "p2p" else f"{scenario}-VNF loopback"
        parts.append(
            f"### {label}\n\n"
            + md_table(
                ["switch", "0.1R⁺", "0.5R⁺", "0.99R⁺", "paper 0.1", "paper 0.5", "paper 0.99"],
                rows,
            )
        )
    return "## Table 3 — RTT latency (µs) at fractions of R⁺\n\n" + "\n\n".join(parts) + "\n"


def table4_section():
    rows = []
    for name in ALL_SWITCHES:
        tb = v2v.build_latency(name)
        result = drive(tb, measure_ns=4_000_000.0)
        rows.append([display(name), result.latency.mean_us, TABLE4[name]])
    return (
        "## Table 4 — v2v RTT latency (µs), 1 Mpps, software timestamping\n\n"
        + md_table(["switch", "measured", "paper"], rows)
        + "\n"
    )


HEADER = """# EXPERIMENTS — paper vs measured

Every table and figure of *Comparing the Performance of State-of-the-Art
Software Switches for NFV* (CoNEXT 2019), regenerated on the simulated
testbed.  Generated by `python tools/make_experiments.py`; the same code
paths run under `pytest benchmarks/ --benchmark-only`.

Absolute numbers are calibrated against the paper's platform (Sec. 5.1);
the claim being validated is the *shape*: per-scenario orderings,
saturation points, crossovers and collapse points.  The paper itself
stresses its numbers are "only indicative" of its hardware/software
versions.

"""

DEVIATIONS = """## Known deviations from the paper

1. **p2p bidirectional at 1024 B (Fig. 4a)** — the paper shows VALE and
   t4p4s below 20 Gbps even at 1024 B; our models saturate (VALE ≈ 20,
   t4p4s ≈ 18-20).  Matching this would require per-byte NIC costs that
   contradict VALE's flat 10 Gbps loopback chains at 1024 B (Fig. 5c),
   which we weighted higher.
2. **p2v bidirectional at 1024 B (Fig. 4b)** — VPP/Snabb saturate 20 Gbps
   in our runs; the paper reports they fall slightly short.  They do fail
   at 256 B, which the text emphasises.
3. **BESS p2v bidirectional 64 B** — measured ≈ 9.5-10 vs paper 11.38.
   The gap traces to the tension between BESS's v2v ceiling (< 7.4 Gbps)
   and its p2v aggregate; both cannot be hit exactly with one vhost cost.
4. **VALE v2v** — uni at 1024 B measures ≈ 65-80 Gbps vs the paper's
   implied ≈ 55; bidi ≈ 21 vs 35.  The in-VM pkt-gen bridge workaround
   dominates bidi in our model (the paper calls its own bidi numbers "a
   lower bound" for the same reason).
5. **OvS-DPDK / t4p4s 0.99 R⁺ loopback tails** — reproduced direction and
   ordering (hundreds of µs, t4p4s worst) but smaller magnitude than the
   paper's extremes (t4p4s up to 7275 µs); matching those tails exactly
   would require second-scale instability episodes that our measurement
   windows (milliseconds) cannot average.

"""


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    t0 = time.time()
    sections = [
        HEADER,
        fig1_section(),
        throughput_grid_section("Fig. 4a — p2p throughput (Gbps)", p2p.build, FIG4A_P2P_UNI_64B),
        throughput_grid_section(
            "Fig. 4b — p2v throughput (Gbps)", p2v.build, FIG4B_P2V_UNI_64B, fig4b_extra()
        ),
        throughput_grid_section(
            "Fig. 4c — v2v throughput (Gbps)", v2v.build, FIG4C_V2V_UNI_64B, fig4c_extra()
        ),
        loopback_section(bidirectional=False),
        loopback_section(bidirectional=True),
        table3_section(),
        table4_section(),
        DEVIATIONS,
    ]
    content = "\n".join(sections)
    content += f"\n*Generated in {time.time() - t0:.0f} s of wall time.*\n"
    with open(out_path, "w") as f:
        f.write(content)
    print(f"wrote {out_path} in {time.time() - t0:.0f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
