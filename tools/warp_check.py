"""Dev harness: assert warp-on vs warp-off bit-identity across switches."""

import sys
import time

sys.path.insert(0, "src")

from repro.core.warp import state_fingerprint
from repro.measure.runner import drive
from repro.scenarios.p2p import build

SWITCHES = ["bess", "fastclick", "ovs-dpdk", "vpp", "t4p4s", "snabb", "vale"]


def run(switch, warp, warmup, measure, rate=None, probe=None, seed=1):
    tb = build(switch, frame_size=64, rate_pps=rate, probe_interval_ns=probe, seed=seed)
    t0 = time.perf_counter()
    res = drive(tb, warmup_ns=warmup, measure_ns=measure, warp=warp)
    wall = time.perf_counter() - t0
    return res, state_fingerprint(tb), wall


def diff(a, b, path="root"):
    if a == b:
        return
    if isinstance(a, tuple) and isinstance(b, tuple) and len(a) == len(b):
        for i, (x, y) in enumerate(zip(a, b)):
            diff(x, y, f"{path}[{i}]")
    else:
        print(f"  MISMATCH at {path}:\n    off: {a!r}\n    on:  {b!r}")


def main():
    measure = float(sys.argv[1]) if len(sys.argv) > 1 else 3_000_000.0
    failures = 0
    for switch in SWITCHES:
        for label, kwargs in [
            ("saturating", {}),
            ("sub-capacity", {"rate": 3_000_000.0}),
        ]:
            r_off, f_off, w_off = run(switch, False, 600_000.0, measure, **kwargs)
            r_on, f_on, w_on = run(switch, True, 600_000.0, measure, **kwargs)
            ident = f_off == f_on
            same_res = (
                [repr(v) for v in r_off.per_direction_gbps]
                == [repr(v) for v in r_on.per_direction_gbps]
                and r_off.events == r_on.events
            )
            status = "OK " if ident and same_res else "FAIL"
            if not (ident and same_res):
                failures += 1
            wr = r_on.warp.describe() if r_on.warp else "none"
            print(
                f"{status} {switch:10s} {label:12s} off={w_off:6.3f}s on={w_on:6.3f}s "
                f"x{w_off / w_on:5.2f}  {wr}"
            )
            if not ident:
                diff(f_off, f_on)
            if not same_res:
                print(f"  result off={r_off.per_direction_gbps} ev={r_off.events}")
                print(f"  result on ={r_on.per_direction_gbps} ev={r_on.events}")
    print("failures:", failures)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
