"""Dev harness: warp-on vs warp-off bit-identity across the shape matrix.

Sweeps every switch over the fast-forward-eligible scenario shapes --
unidirectional and bidirectional p2p, p2v, v2v and a loopback VNF chain
-- under saturating and sub-capacity input, and asserts per cell that

* the end-state fingerprint (every counter, timestamp, stats accumulator
  and RNG stream; :func:`repro.core.warp.state_fingerprint`) and the
  measured results are bit-identical between warp-off and warp-on runs;
* the engine's engage/decline decision matches the contract: exact
  switches engage (replay on clean uni p2p, the chain turbo elsewhere),
  VALE declines as ``interrupt-driven``, Snabb as ``pipeline-switch``.

Usage: ``PYTHONPATH=src python tools/warp_check.py [measure_ns]``
(default 3 ms; CI runs the 10x window where warp covers most of the
simulated horizon).
"""

import sys
import time

sys.path.insert(0, "src")

from repro.core.warp import state_fingerprint
from repro.measure.runner import drive
from repro.scenarios import loopback, p2p, p2v, v2v

SWITCHES = ["bess", "fastclick", "ovs-dpdk", "vpp", "t4p4s", "snabb", "vale"]

#: Expected decline reasons for switches the fast-forward cannot prove
#: safe; everything else must engage in every cell.
EXPECTED_DECLINE = {"snabb": "pipeline-switch", "vale": "interrupt-driven"}

#: (label, builder, build kwargs, sub-capacity rate in pps).  Rates sit
#: at roughly 0.3x the slowest switch's capacity for the shape so the
#: sub-capacity cell is idle-dominated for every switch.
SHAPES = [
    ("p2p", p2p.build, {}, 3_000_000.0),
    ("p2p-bidi", p2p.build, {"bidirectional": True}, 2_000_000.0),
    ("p2v", p2v.build, {}, 1_000_000.0),
    ("v2v", v2v.build, {}, 800_000.0),
    ("loopback", loopback.build, {"n_vnfs": 2}, 500_000.0),
]


def run(build, switch, warp, warmup, measure, rate, kwargs):
    tb = build(switch, frame_size=64, rate_pps=rate, seed=1, **kwargs)
    t0 = time.perf_counter()
    res = drive(tb, warmup_ns=warmup, measure_ns=measure, warp=warp)
    wall = time.perf_counter() - t0
    return res, state_fingerprint(tb), wall


def diff(a, b, path="root"):
    if a == b:
        return
    if isinstance(a, tuple) and isinstance(b, tuple) and len(a) == len(b):
        for i, (x, y) in enumerate(zip(a, b)):
            diff(x, y, f"{path}[{i}]")
    else:
        print(f"  MISMATCH at {path}:\n    off: {a!r}\n    on:  {b!r}")


def check_engagement(switch, report):
    """The engage/decline contract for one cell; returns an error or None."""
    if report is None:
        return "no warp report"
    expected = EXPECTED_DECLINE.get(switch)
    if expected is None:
        if not report.engaged:
            return f"expected engagement, got {report.describe()}"
        return None
    if report.engaged:
        return f"expected decline ({expected}), got {report.describe()}"
    if report.reason != expected:
        return f"expected decline reason {expected!r}, got {report.reason!r}"
    return None


def main():
    measure = float(sys.argv[1]) if len(sys.argv) > 1 else 3_000_000.0
    failures = 0
    for switch in SWITCHES:
        for shape, build, kwargs, sub_rate in SHAPES:
            for label, rate in [("saturating", None), ("sub-capacity", sub_rate)]:
                r_off, f_off, w_off = run(
                    build, switch, False, 600_000.0, measure, rate, kwargs
                )
                r_on, f_on, w_on = run(
                    build, switch, True, 600_000.0, measure, rate, kwargs
                )
                ident = f_off == f_on
                same_res = (
                    [repr(v) for v in r_off.per_direction_gbps]
                    == [repr(v) for v in r_on.per_direction_gbps]
                    and r_off.events == r_on.events
                )
                engage_err = check_engagement(switch, r_on.warp)
                ok = ident and same_res and engage_err is None
                if not ok:
                    failures += 1
                wr = r_on.warp.describe() if r_on.warp else "none"
                print(
                    f"{'OK ' if ok else 'FAIL'} {switch:10s} {shape:9s} "
                    f"{label:12s} off={w_off:6.3f}s on={w_on:6.3f}s "
                    f"x{w_off / w_on:5.2f}  {wr}"
                )
                if engage_err is not None:
                    print(f"  ENGAGEMENT: {engage_err}")
                if not ident:
                    diff(f_off, f_on)
                if not same_res:
                    print(f"  result off={r_off.per_direction_gbps} ev={r_off.events}")
                    print(f"  result on ={r_on.per_direction_gbps} ev={r_on.events}")
    print("failures:", failures)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
