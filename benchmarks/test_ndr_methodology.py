"""Methodology bench: RFC 2544 NDR vs the paper's R+ (footnote 3).

Regenerates the argument behind the paper's measurement design: a strict
binary search for the Non-Drop-Rate is derailed by sporadic driver-level
drops on software testbeds, while R+ -- the average throughput under
saturating input -- is stable.
"""

from __future__ import annotations

from conftest import BENCH_MEASURE_NS, BENCH_WARMUP_NS, run_once
from repro.analysis.tables import format_table
from repro.measure.ndr import ndr_search
from repro.measure.throughput import estimate_r_plus
from repro.scenarios import p2p
from repro.switches.registry import ALL_SWITCHES

WINDOWS = dict(warmup_ns=BENCH_WARMUP_NS, measure_ns=BENCH_MEASURE_NS)


def _measure():
    rows = []
    for name in ALL_SWITCHES:
        r_plus = estimate_r_plus(p2p.build, name, 64, **WINDOWS) / 1e6
        strict = ndr_search(p2p.build, name, 64, iterations=8, **WINDOWS).ndr_mpps
        tolerant = ndr_search(
            p2p.build, name, 64, iterations=8, tolerance_packets=64, **WINDOWS
        ).ndr_mpps
        rows.append([name, r_plus, strict, tolerant, strict / r_plus if r_plus else 0.0])
    return rows


def test_ndr_vs_rplus_methodology(benchmark):
    rows = run_once(benchmark, _measure)
    print()
    print(
        format_table(
            ["switch", "R+ (Mpps)", "strict NDR", "NDR +64pkt tol.", "strict/R+"],
            rows,
            title="Methodology: RFC 2544 NDR vs the paper's R+ (64B p2p)",
        )
    )
    by_name = {row[0]: row for row in rows}
    # At least one fast switch gets badly underestimated by strict NDR...
    assert any(row[4] < 0.8 for row in rows)
    # ...while the tolerant variant tracks R+ closely for stable switches.
    assert by_name["bess"][3] > 0.9 * by_name["bess"][1]
