"""Fig. 4b: p2v throughput grid, plus the VPP reversed-path probe."""

from __future__ import annotations

from conftest import BENCH_MEASURE_NS, BENCH_WARMUP_NS, run_once
from repro.analysis.paper_values import (
    BESS_P2V_BIDI_64B,
    FIG4B_P2V_UNI_64B,
    VPP_P2V_BIDI_64B,
    VPP_P2V_REVERSED_64B,
)
from repro.analysis.tables import format_table
from repro.core.units import PAPER_FRAME_SIZES
from repro.measure.throughput import measure_throughput
from repro.scenarios import p2v
from repro.switches.registry import ALL_SWITCHES


def _measure_grid():
    rows = []
    for name in ALL_SWITCHES:
        row = [name]
        for size in PAPER_FRAME_SIZES:
            for bidi in (False, True):
                result = measure_throughput(
                    p2v.build, name, size, bidirectional=bidi,
                    warmup_ns=BENCH_WARMUP_NS, measure_ns=BENCH_MEASURE_NS,
                )
                row.append(result.gbps)
        row.append(FIG4B_P2V_UNI_64B[name])
        rows.append(row)
    reversed_vpp = measure_throughput(
        p2v.build, "vpp", 64, reversed_path=True,
        warmup_ns=BENCH_WARMUP_NS, measure_ns=BENCH_MEASURE_NS,
    ).gbps
    return rows, reversed_vpp


def test_fig4b_p2v_throughput(benchmark):
    rows, reversed_vpp = run_once(benchmark, _measure_grid)
    print()
    print(
        format_table(
            ["switch", "64u", "64b", "256u", "256b", "1024u", "1024b", "paper64u"],
            rows,
            title="Fig. 4b -- p2v throughput (Gbps), measured vs paper",
        )
    )
    print(
        f"VPP reversed path (VM->NIC) 64B: {reversed_vpp:.2f} Gbps "
        f"(paper: {VPP_P2V_REVERSED_64B}); "
        f"paper bidi anchors: BESS {BESS_P2V_BIDI_64B}, VPP {VPP_P2V_BIDI_64B}"
    )
    by_name = {row[0]: row for row in rows}
    assert by_name["bess"][1] > 9.0          # BESS holds 10G despite vhost
    assert by_name["t4p4s"][1] < 5.2         # t4p4s worst
    assert by_name["vale"][1] >= 0.95 * 5.33  # ptnet: no p2v tax
    forward_vpp = by_name["vpp"][1]
    assert reversed_vpp < forward_vpp        # the vhost RX penalty
