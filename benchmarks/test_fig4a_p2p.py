"""Fig. 4a: p2p throughput, {64,256,1024} B x {uni,bidi}, all switches."""

from __future__ import annotations

from conftest import BENCH_MEASURE_NS, BENCH_WARMUP_NS, run_once
from repro.analysis.paper_values import FIG4A_P2P_BIDI_64B, FIG4A_P2P_UNI_64B
from repro.analysis.tables import format_table
from repro.core.units import PAPER_FRAME_SIZES
from repro.measure.throughput import measure_throughput
from repro.scenarios import p2p
from repro.switches.registry import ALL_SWITCHES


def _measure_grid():
    rows = []
    for name in ALL_SWITCHES:
        row = [name]
        for size in PAPER_FRAME_SIZES:
            for bidi in (False, True):
                result = measure_throughput(
                    p2p.build, name, size, bidirectional=bidi,
                    warmup_ns=BENCH_WARMUP_NS, measure_ns=BENCH_MEASURE_NS,
                )
                row.append(result.gbps)
        row.append(FIG4A_P2P_UNI_64B[name])
        row.append(FIG4A_P2P_BIDI_64B[name])
        rows.append(row)
    return rows


def test_fig4a_p2p_throughput(benchmark):
    rows = run_once(benchmark, _measure_grid)
    print()
    print(
        format_table(
            ["switch", "64u", "64b", "256u", "256b", "1024u", "1024b", "paper64u", "paper64b"],
            rows,
            title="Fig. 4a -- p2p throughput (Gbps), measured vs paper",
        )
    )
    by_name = {row[0]: row for row in rows}
    # Shape checks mirroring the paper's prose.
    for name in ("bess", "fastclick", "vpp"):
        assert by_name[name][1] > 9.5
    assert by_name["bess"][2] > 14.0
    for name in ALL_SWITCHES:
        assert by_name[name][3] > 9.0  # everyone saturates uni at 256B
