"""Ablation benches for the design choices the paper's taxonomy calls out.

Not a paper artifact: these sweeps isolate each modelled mechanism --
batching, poll vs interrupt I/O, zero-copy vs copy, flow caching -- and
show its quantitative effect, which is the understanding Sec. 3 argues a
fair comparison requires.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import BENCH_LATENCY_MEASURE_NS, BENCH_MEASURE_NS, BENCH_WARMUP_NS, run_once
from repro.analysis.tables import format_table
from repro.measure.latency import measure_latency_at
from repro.measure.runner import drive
from repro.measure.throughput import measure_throughput
from repro.scenarios import p2p, v2v
from repro.scenarios.base import Testbed as _SimTestbed
from repro.nic.port import NicPort
from repro.scenarios.base import connect_ports
from repro.switches.params import OVS_PARAMS, VALE_PARAMS, VPP_PARAMS
from repro.switches.registry import params_for
from repro.traffic.moongen import MoonGenRx, MoonGenTx, saturating_rate


def _p2p_with_params(params, frame_size=64, rate_pps=None, flow_count=1, seed=1):
    """A p2p testbed with overridden switch parameters."""
    from repro.switches.registry import create_switch
    from repro.core.engine import Simulator
    from repro.core.rng import RngRegistry
    from repro.cpu.numa import Machine

    sim = Simulator()
    machine = Machine(sim)
    rngs = RngRegistry(seed)
    switch = create_switch(params.name, sim, rngs=rngs, bus=machine.node0.bus, params=params)
    sut_core = machine.node0.add_core("sut")
    gen0, gen1 = NicPort(sim, "g0"), NicPort(sim, "g1")
    sut0, sut1 = NicPort(sim, "s0"), NicPort(sim, "s1")
    connect_ports(gen0, sut0)
    connect_ports(gen1, sut1)
    switch.add_path(switch.attach_phy(sut0), switch.attach_phy(sut1))
    switch.bind_core(sut_core)
    rate = rate_pps if rate_pps is not None else saturating_rate(frame_size)
    tx = MoonGenTx(sim, gen0, rate, frame_size, probe_interval_ns=20_000.0, flow_count=flow_count)
    rx = MoonGenRx(sim, gen1, frame_size)
    tx.start(0.0)
    tb = _SimTestbed(sim, machine, rngs, switch, sut_core, frame_size, scenario="p2p-ablation")
    tb.meters.append(rx.meter)
    tb.latency_meters.append(rx.meter)
    return tb


def _gbps(tb):
    return drive(tb, warmup_ns=BENCH_WARMUP_NS, measure_ns=BENCH_MEASURE_NS).gbps


def test_ablation_vector_size(benchmark):
    """VPP's vector processing: throughput vs maximum vector size."""

    def sweep():
        rows = []
        for vector in (1, 4, 16, 64, 256):
            params = replace(VPP_PARAMS, batch_size=vector)
            rows.append([vector, _gbps(_p2p_with_params(params))])
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(format_table(["vector size", "p2p 64B (Gbps)"], rows, title="Ablation: VPP vector size"))
    assert rows[-1][1] > rows[0][1]  # big vectors amortise dispatch


def test_ablation_interrupt_vs_poll(benchmark):
    """VALE's interrupt I/O vs a hypothetical poll-mode VALE."""

    def sweep():
        poll_params = replace(
            VALE_PARAMS, interrupt_driven=False, rx_moderation_ns=None
        )
        results = {}
        for label, params in (("interrupt", VALE_PARAMS), ("poll-mode", poll_params)):
            tb = _p2p_with_params(params, rate_pps=1_000_000.0)
            result = drive(tb, warmup_ns=BENCH_WARMUP_NS, measure_ns=BENCH_LATENCY_MEASURE_NS)
            results[label] = result.latency.mean_us
        return results

    results = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["I/O discipline", "p2p RTT @1Mpps (us)"],
            [[k, v] for k, v in results.items()],
            title="Ablation: interrupt vs poll I/O (VALE)",
        )
    )
    # Busy-polling removes the ITR + wake-up floor.
    assert results["poll-mode"] < results["interrupt"] / 3


def test_ablation_zero_copy(benchmark):
    """VALE's port-to-port isolation copy: default vs hypothetical zero-copy."""

    def sweep():
        zero_copy = replace(
            VALE_PARAMS, proc=replace(VALE_PARAMS.proc, per_byte=0.0)
        )
        out = {}
        for label, params in (("with copy", VALE_PARAMS), ("zero copy", zero_copy)):
            tb = _p2p_with_params(params, frame_size=1024)
            out[label] = _gbps(tb)
        return out

    results = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["variant", "p2p 1024B (Gbps)"],
            [[k, v] for k, v in results.items()],
            title="Ablation: VALE isolation copy",
        )
    )
    assert results["zero copy"] >= results["with copy"]


def test_ablation_flow_cache(benchmark):
    """OvS-DPDK EMC: single flow vs flow counts beyond the 8k-entry EMC."""

    def sweep():
        rows = []
        for flows in (1, 1024, 8192, 32768):
            tb = _p2p_with_params(OVS_PARAMS, flow_count=flows)
            gbps = _gbps(tb)
            switch = tb.switch
            hit_rate = switch.emc_hits / max(1, switch.emc_hits + switch.emc_misses)
            rows.append([flows, gbps, 100 * hit_rate])
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["flows", "p2p 64B (Gbps)", "EMC hit rate (%)"],
            rows,
            title="Ablation: OvS-DPDK flow cache under flow-count pressure",
        )
    )
    # Paper Sec. 5.2: with one flow the cache is always hit -- and does not
    # help (the hit path is the cost).  Past EMC capacity, misses bite.
    assert rows[0][2] > 99.0
    assert rows[-1][1] < rows[0][1]
    assert rows[-1][2] < 50.0


def test_ablation_snabb_stalls(benchmark):
    """LuaJIT stalls: Snabb's p2p latency tail with and without the JIT."""

    def sweep():
        from repro.switches.params import SNABB_PARAMS

        no_jit = replace(SNABB_PARAMS, stall_period_ns=None, stall_cycles=0.0)
        out = {}
        for label, params in (("with JIT stalls", SNABB_PARAMS), ("no stalls", no_jit)):
            tb = _p2p_with_params(params, rate_pps=6_000_000.0)
            result = drive(tb, warmup_ns=BENCH_WARMUP_NS, measure_ns=BENCH_LATENCY_MEASURE_NS)
            out[label] = (result.latency.mean_us, result.latency.percentile_us(99))
        return out

    results = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["variant", "mean RTT (us)", "p99 RTT (us)"],
            [[k, *v] for k, v in results.items()],
            title="Ablation: Snabb LuaJIT stalls",
        )
    )
    assert results["with JIT stalls"][1] >= results["no stalls"][1]


def test_ablation_p4_programs(benchmark):
    """t4p4s recompiled for richer P4 programs (stateful SDN, Sec. 5.4)."""

    def sweep():
        from repro.switches.p4 import L2FWD_PROGRAM, L3FWD_PROGRAM, compile_program
        from repro.switches.params import T4P4S_PARAMS
        from dataclasses import replace as dreplace
        from repro.cpu.costmodel import Cost

        rows = []
        for program in (L2FWD_PROGRAM, L3FWD_PROGRAM):
            compiled = compile_program(program)
            params = dreplace(
                T4P4S_PARAMS,
                proc=Cost(per_batch=T4P4S_PARAMS.proc.per_batch) + compiled.proc,
            )
            gbps = _gbps(_p2p_with_params(params))
            rows.append([program.name, compiled.proc.per_packet, gbps])
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["P4 program", "proc cycles/pkt", "p2p 64B (Gbps)"],
            rows,
            title="Ablation: t4p4s recompiled for richer P4 programs",
        )
    )
    l2fwd, l3fwd = rows
    assert l3fwd[2] < l2fwd[2]  # the stateful pipeline costs throughput


def test_ablation_vpp_graph_paths(benchmark):
    """VPP reconfigured as bridge / router / ACL'd router (Sec. 5.4's
    "full-fledged software network function")."""

    def sweep():
        from dataclasses import replace as dreplace

        from repro.switches.vppgraph import (
            IP4_ACL_ROUTER_PATH,
            IP4_ROUTER_PATH,
            L2_BRIDGE_PATH,
            L2PATCH_PATH,
            compile_path,
        )

        rows = []
        for label, path in (
            ("l2patch (paper)", L2PATCH_PATH),
            ("l2 bridge", L2_BRIDGE_PATH),
            ("ip4 router", IP4_ROUTER_PATH),
            ("ip4 router + ACL", IP4_ACL_ROUTER_PATH),
        ):
            compiled = compile_path(path)
            params = dreplace(VPP_PARAMS, proc=compiled.proc)
            rows.append([label, compiled.depth, compiled.proc.per_packet, _gbps(_p2p_with_params(params))])
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["graph path", "nodes", "cycles/pkt", "p2p 64B (Gbps)"],
            rows,
            title="Ablation: VPP graph paths (l2patch -> full router)",
        )
    )
    assert rows[0][3] >= rows[-1][3]  # richer graphs cost throughput
