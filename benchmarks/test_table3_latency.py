"""Table 3: RTT latency for p2p and loopback chains at 0.10/0.50/0.99 R+."""

from __future__ import annotations

from conftest import BENCH_LATENCY_MEASURE_NS, BENCH_WARMUP_NS, run_once
from repro.analysis.paper_values import TABLE3
from repro.analysis.tables import format_table
from repro.measure.latency import LOAD_FRACTIONS, latency_sweep
from repro.scenarios import loopback, p2p
from repro.switches.registry import ALL_SWITCHES
from repro.vm.machine import QemuCompatibilityError

#: Chain lengths benchmarked (the full Table 3 runs 1-4; trimmed here for
#: bench wall-clock -- extend via REPRO_TABLE3_CHAINS if desired).
CHAINS = (1, 2)


def _sweep(build, name, **kwargs):
    points = latency_sweep(
        build, name, 64,
        warmup_ns=BENCH_WARMUP_NS, measure_ns=BENCH_LATENCY_MEASURE_NS,
        **kwargs,
    )
    return tuple(points[f].mean_us for f in LOAD_FRACTIONS)


def _measure():
    table = {}
    for name in ALL_SWITCHES:
        table[(name, "p2p")] = _sweep(p2p.build, name)
        for n in CHAINS:
            try:
                table[(name, n)] = _sweep(loopback.build, name, n_vnfs=n)
            except QemuCompatibilityError:
                table[(name, n)] = None
    return table


def test_table3_latency(benchmark):
    table = run_once(benchmark, _measure)
    print()
    headers = ["switch", "0.1R+", "0.5R+", "0.99R+", "paper 0.1", "paper 0.5", "paper 0.99"]
    for scenario in ["p2p", *CHAINS]:
        rows = []
        for name in ALL_SWITCHES:
            measured = table[(name, scenario)]
            paper = TABLE3[name][scenario if scenario == "p2p" else scenario]
            cells = list(measured) if measured else [None] * 3
            paper_cells = list(paper) if paper else [None] * 3
            rows.append([name, *cells, *paper_cells])
        label = "p2p" if scenario == "p2p" else f"{scenario}-VNF loopback"
        print(format_table(headers, rows, title=f"Table 3 -- RTT (us), {label}"))
        print()

    # Shape assertions from Sec. 5.3.
    p2p_rows = {name: table[(name, "p2p")] for name in ALL_SWITCHES}
    assert p2p_rows["bess"][1] < p2p_rows["snabb"][1] < p2p_rows["vale"][1]
    assert p2p_rows["t4p4s"][2] > 5 * p2p_rows["bess"][2]
    # Loopback: 0.10R+ exceeds 0.50R+ for l2fwd chains, not for VALE.
    for name in ("vpp", "fastclick", "snabb"):
        assert table[(name, 1)][0] > table[(name, 1)][1], name
    assert table[("vale", 1)][0] < table[("vale", 1)][1] * 1.5
