"""Shared bench configuration.

Each bench regenerates one of the paper's tables or figures.  Benches run
the full measurement through pytest-benchmark (one round -- these are
macro-benchmarks of whole experiments, not micro-benchmarks) and print
the regenerated artifact so ``pytest benchmarks/ --benchmark-only``
output reads like the paper's evaluation section.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

#: Bench measurement windows: larger than the unit-test windows for
#: stability, smaller than the calibration defaults for wall-clock sanity.
BENCH_WARMUP_NS = 400_000.0
BENCH_MEASURE_NS = 2_000_000.0
BENCH_LATENCY_MEASURE_NS = 3_000_000.0


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
