"""Table 4: v2v RTT latency at 1 Mpps with software timestamping."""

from __future__ import annotations

from conftest import BENCH_LATENCY_MEASURE_NS, BENCH_WARMUP_NS, run_once
from repro.analysis.paper_values import TABLE4
from repro.analysis.tables import format_table
from repro.measure.runner import drive
from repro.scenarios import v2v
from repro.switches.registry import ALL_SWITCHES


def _measure():
    rtts = {}
    for name in ALL_SWITCHES:
        tb = v2v.build_latency(name)
        result = drive(tb, warmup_ns=BENCH_WARMUP_NS, measure_ns=BENCH_LATENCY_MEASURE_NS)
        rtts[name] = (result.latency.mean_us, result.latency.std_us)
    return rtts


def test_table4_v2v_latency(benchmark):
    rtts = run_once(benchmark, _measure)
    print()
    rows = [
        [name, mean, std, TABLE4[name]]
        for name, (mean, std) in rtts.items()
    ]
    print(
        format_table(
            ["switch", "RTT (us)", "std (us)", "paper (us)"],
            rows,
            title="Table 4 -- v2v RTT latency, measured vs paper",
        )
    )
    means = {name: mean for name, (mean, std) in rtts.items()}
    # Orderings from Sec. 5.3.
    assert means["vale"] == min(means.values())             # ping over ptnet wins
    assert means["t4p4s"] > means["bess"]                   # worst pipeline
    assert means["snabb"] > means["vpp"]                    # inter-app buffers
    quartet = [means[n] for n in ("bess", "fastclick", "vpp", "ovs-dpdk")]
    assert max(quartet) < 1.6 * min(quartet)                # "very similar"
