"""Fig. 1: the motivating scatter plots.

Bidirectional p2p at 64 B: measure each switch's maximum throughput, then
its RTT at an offered load of 0.95 x that maximum.  Left plot: throughput
vs mean latency (negatively correlated).  Right plot: latency mean vs
standard deviation (no pattern).
"""

from __future__ import annotations

import numpy as np

from conftest import BENCH_LATENCY_MEASURE_NS, BENCH_MEASURE_NS, BENCH_WARMUP_NS, run_once
from repro.analysis.tables import format_table
from repro.measure.latency import measure_latency_at
from repro.measure.throughput import measure_throughput
from repro.scenarios import p2p
from repro.switches.registry import ALL_SWITCHES


def _measure():
    points = {}
    for name in ALL_SWITCHES:
        max_tput = measure_throughput(
            p2p.build, name, 64, bidirectional=True,
            warmup_ns=BENCH_WARMUP_NS, measure_ns=BENCH_MEASURE_NS,
        )
        per_direction_pps = max_tput.mpps * 1e6 / 2
        point = measure_latency_at(
            p2p.build, name, 64,
            rate_pps=0.95 * per_direction_pps, fraction=0.95,
            warmup_ns=BENCH_WARMUP_NS, measure_ns=BENCH_LATENCY_MEASURE_NS,
            bidirectional=True,
        )
        points[name] = (max_tput.gbps, point.mean_us, point.std_us)
    return points


def test_fig1_scatter(benchmark):
    points = run_once(benchmark, _measure)
    print()
    rows = [[name, *values] for name, values in points.items()]
    print(
        format_table(
            ["switch", "throughput (Gbps)", "mean RTT (us)", "std RTT (us)"],
            rows,
            title="Fig. 1 -- bidirectional p2p 64B: throughput vs latency @0.95*max",
        )
    )
    throughput = np.array([v[0] for v in points.values()])
    mean_lat = np.array([v[1] for v in points.values()])
    corr = float(np.corrcoef(throughput, mean_lat)[0, 1])
    print(f"throughput/latency correlation: {corr:.2f} (paper: negative)")
    # The paper's headline observation: higher throughput <-> lower latency.
    assert corr < 0
    # And the std-vs-mean panel shows no tight pattern: the best-throughput
    # switch is not the lowest-variance one or vice versa for all.
    assert len({round(v[2], 1) for v in points.values()}) > 3
