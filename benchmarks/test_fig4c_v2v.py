"""Fig. 4c: v2v throughput grid (memory-bound, no NICs)."""

from __future__ import annotations

from conftest import BENCH_MEASURE_NS, BENCH_WARMUP_NS, run_once
from repro.analysis.paper_values import (
    FIG4C_V2V_UNI_64B,
    VALE_V2V_BIDI_RATIO,
)
from repro.analysis.tables import format_table
from repro.core.units import PAPER_FRAME_SIZES
from repro.measure.throughput import measure_throughput
from repro.scenarios import v2v
from repro.switches.registry import ALL_SWITCHES


def _measure_grid():
    rows = []
    for name in ALL_SWITCHES:
        row = [name]
        for size in PAPER_FRAME_SIZES:
            for bidi in (False, True):
                result = measure_throughput(
                    v2v.build, name, size, bidirectional=bidi,
                    warmup_ns=BENCH_WARMUP_NS, measure_ns=BENCH_MEASURE_NS,
                )
                row.append(result.gbps)
        row.append(FIG4C_V2V_UNI_64B[name])
        rows.append(row)
    return rows


def test_fig4c_v2v_throughput(benchmark):
    rows = run_once(benchmark, _measure_grid)
    print()
    print(
        format_table(
            ["switch", "64u", "64b", "256u", "256b", "1024u", "1024b", "paper64u"],
            rows,
            title="Fig. 4c -- v2v throughput (Gbps), measured vs paper",
        )
    )
    by_name = {row[0]: row for row in rows}
    vale = by_name["vale"]
    # VALE dominates at 64B; everyone else below it (Sec. 5.2).
    for name in ALL_SWITCHES:
        if name != "vale":
            assert by_name[name][1] < vale[1], name
    # Memory-bound: VALE's 1024B v2v goes far past the 10G wire.
    assert vale[5] > 20.0
    # Bidirectional degradation for VALE at 1024B (paper: 64% of uni).
    ratio = vale[6] / vale[5]
    print(f"VALE 1024B bidi/uni ratio: {ratio:.2f} (paper: {VALE_V2V_BIDI_RATIO})")
    assert ratio < 1.0
