"""Future-work benches: multi-core scaling, containers, realistic mixes.

The paper closes with "our planned future work will include
consideration of multi-core solutions and the use of containers instead
of VMs" (Sec. 6).  These benches run both on the simulated testbed, plus
an IMIX/data-centre frame-mix sweep extending the fixed-size workloads.
"""

from __future__ import annotations

from conftest import BENCH_MEASURE_NS, BENCH_WARMUP_NS, run_once
from repro.analysis.tables import format_table
from repro.measure.runner import drive
from repro.measure.throughput import measure_throughput
from repro.scenarios import loopback
from repro.switches.registry import ALL_SWITCHES
from repro.traffic.profiles import DATACENTER, IMIX
from repro.vm.machine import QemuCompatibilityError

WINDOWS = dict(warmup_ns=BENCH_WARMUP_NS, measure_ns=BENCH_MEASURE_NS)


def test_multicore_scaling(benchmark):
    """Bidirectional p2p throughput with 1 vs 2 worker cores."""
    from test_future_work_helpers import build_p2p_multicore

    def sweep():
        rows = []
        for name in ("vale", "t4p4s", "ovs-dpdk", "bess"):
            per_cores = []
            for cores in (1, 2):
                tb = build_p2p_multicore(name, cores)
                per_cores.append(drive(tb, **WINDOWS).gbps)
            rows.append([name, *per_cores, per_cores[1] / per_cores[0]])
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["switch", "1 core", "2 cores", "speedup"],
            rows,
            title="Future work: multi-core scaling (bidirectional p2p, 64B, Gbps)",
        )
    )
    by_name = {r[0]: r for r in rows}
    assert by_name["t4p4s"][3] > 1.6       # core-bound switches scale
    assert by_name["bess"][3] < 1.35       # wire-bound ones cannot


def test_vm_vs_container_chains(benchmark):
    """3-VNF loopback: QEMU guests vs containers, all switches."""

    def sweep():
        rows = []
        for name in ALL_SWITCHES:
            cells = [name]
            for virtualization in ("vm", "container"):
                try:
                    cells.append(
                        measure_throughput(
                            loopback.build, name, 64, n_vnfs=3,
                            virtualization=virtualization, **WINDOWS,
                        ).gbps
                    )
                except QemuCompatibilityError:
                    cells.append(None)
            rows.append(cells)
        # BESS beyond the QEMU limit, containers only.
        bess5 = measure_throughput(
            loopback.build, "bess", 64, n_vnfs=5, virtualization="container", **WINDOWS
        ).gbps
        return rows, bess5

    rows, bess5 = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["switch", "VM chain", "container chain"],
            rows,
            title="Future work: 3-VNF loopback, VMs vs containers (64B, Gbps)",
        )
    )
    print(f"BESS 5-VNF chain (impossible under QEMU): {bess5:.2f} Gbps with containers")
    for name, vm_gbps, ct_gbps in rows:
        if vm_gbps is not None:
            assert ct_gbps >= 0.8 * vm_gbps, name
    assert bess5 > 0.2


def test_realistic_frame_mixes(benchmark):
    """p2p throughput under IMIX and the cited data-centre mix."""
    from test_future_work_helpers import build_p2p_profile

    def sweep():
        rows = []
        for name in ALL_SWITCHES:
            cells = [name]
            for profile in (IMIX, DATACENTER):
                tb = build_p2p_profile(name, profile)
                cells.append(drive(tb, **WINDOWS).gbps)
            rows.append(cells)
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(
        format_table(
            ["switch", "IMIX (Gbps)", "datacenter ~850B (Gbps)"],
            rows,
            title="Extension: realistic frame-size mixes, unidirectional p2p",
        )
    )
    by_name = {r[0]: r for r in rows}
    # Larger average frames push everyone towards line rate, matching the
    # paper's observation that realistic traffic is easy (Sec. 5.2).
    for name in ("bess", "vpp", "fastclick", "snabb", "ovs-dpdk"):
        assert by_name[name][2] > 9.0, name
    # The per-byte-cost switches keep their IMIX penalty ordering.
    assert by_name["t4p4s"][1] < by_name["bess"][1]
