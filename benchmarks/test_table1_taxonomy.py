"""Tables 1, 2 and 5: the qualitative artifacts, rendered and checked."""

from __future__ import annotations

from conftest import run_once
from repro.analysis.tables import format_table
from repro.switches.registry import ALL_SWITCHES, params_for
from repro.switches.taxonomy import TAXONOMY, TUNINGS, USE_CASES


def _build_tables():
    taxonomy_rows = [
        [
            row.name,
            row.architecture.value,
            row.paradigm.value,
            row.processing_model.value,
            row.virtual_interface,
            row.reprogrammability.value,
            "/".join(row.languages),
            row.main_purpose,
        ]
        for row in TAXONOMY.values()
    ]
    tuning_rows = [[name, text] for name, text in TUNINGS.items()]
    usecase_rows = [[name, best, remarks] for name, (best, remarks) in USE_CASES.items()]
    return taxonomy_rows, tuning_rows, usecase_rows


def test_table1_2_5_taxonomy(benchmark):
    taxonomy_rows, tuning_rows, usecase_rows = run_once(benchmark, _build_tables)
    print()
    print(
        format_table(
            ["switch", "architecture", "paradigm", "model", "vif", "reprog.", "languages", "purpose"],
            taxonomy_rows,
            title="Table 1 -- design-space taxonomy",
        )
    )
    print()
    print(format_table(["switch", "applied tuning"], tuning_rows, title="Table 2 -- parameter tuning"))
    print()
    print(format_table(["switch", "best at", "remarks"], usecase_rows, title="Table 5 -- use cases"))

    # Consistency: the qualitative tables agree with the executable models.
    assert len(taxonomy_rows) == 7
    for name in ALL_SWITCHES:
        params = params_for(name)
        row = TAXONOMY[name]
        assert params.pipeline == (row.processing_model.value == "pipeline")
        assert params.interrupt_driven == (row.virtual_interface == "ptnet")
    assert params_for("fastclick").nic_rx_slots == 4096  # Table 2 applied

    from repro.core.engine import Simulator
    from repro.switches.t4p4s import T4P4S

    assert not T4P4S(Simulator()).mac_learning  # Table 2 applied
