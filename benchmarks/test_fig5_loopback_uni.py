"""Fig. 5: unidirectional loopback throughput, chains of 1-5 VNFs."""

from __future__ import annotations

from conftest import BENCH_MEASURE_NS, BENCH_WARMUP_NS, run_once
from repro.analysis.paper_values import LOOPBACK_FINDINGS
from repro.analysis.tables import format_table
from repro.core.units import PAPER_FRAME_SIZES
from repro.measure.throughput import measure_throughput
from repro.scenarios import loopback
from repro.switches.registry import ALL_SWITCHES
from repro.vm.machine import QemuCompatibilityError

CHAINS = (1, 2, 3, 4, 5)


def _measure(bidirectional=False):
    grids = {}
    for size in PAPER_FRAME_SIZES:
        rows = []
        for name in ALL_SWITCHES:
            row = [name]
            for n in CHAINS:
                try:
                    result = measure_throughput(
                        loopback.build, name, size,
                        bidirectional=bidirectional, n_vnfs=n,
                        warmup_ns=BENCH_WARMUP_NS, measure_ns=BENCH_MEASURE_NS,
                    )
                    row.append(result.gbps)
                except QemuCompatibilityError:
                    row.append(None)  # the paper's '-' cells for BESS
            rows.append(row)
        grids[size] = rows
    return grids


def test_fig5_loopback_unidirectional(benchmark):
    grids = run_once(benchmark, _measure)
    print()
    for size, rows in grids.items():
        print(
            format_table(
                ["switch"] + [f"{n} VNF" for n in CHAINS],
                rows,
                title=f"Fig. 5 -- loopback unidirectional throughput (Gbps), {size}B",
            )
        )
        print()
    print("Paper findings reproduced:")
    for finding in LOOPBACK_FINDINGS:
        print(f"  - {finding}")

    rows64 = {row[0]: row for row in grids[64]}
    rows1024 = {row[0]: row for row in grids[1024]}
    # BESS wins at 1 VNF, is absent beyond 3.
    assert rows64["bess"][1] == max(rows64[n][1] for n in ALL_SWITCHES)
    assert rows64["bess"][4] is None and rows64["bess"][5] is None
    # Snabb collapses at 4 VNFs.
    assert rows64["snabb"][4] < rows64["snabb"][3] / 3
    # VALE stays near 10G at 1024B up to 3 VNFs and decays gently after.
    assert rows1024["vale"][1] > 9.0
    assert rows1024["vale"][3] > 8.0
    # Chains monotonically degrade vhost switches.
    vpp = rows64["vpp"][1:]
    assert all(a >= b for a, b in zip(vpp, vpp[1:]))
