"""Testbed builders shared by the future-work benches (not a test module)."""

from __future__ import annotations

from repro.core.engine import Simulator
from repro.core.rng import RngRegistry
from repro.cpu.numa import Machine
from repro.nic.port import NicPort
from repro.scenarios.base import Testbed, connect_ports
from repro.switches.registry import create_switch
from repro.traffic.moongen import MoonGenRx, MoonGenTx
from repro.traffic.profiles import SizeProfile

__test__ = False


def build_p2p_multicore(switch_name: str, n_cores: int, frame_size: int = 64, seed: int = 1) -> Testbed:
    """Bidirectional p2p with the switch spread over ``n_cores`` workers."""
    sim = Simulator()
    machine = Machine(sim)
    rngs = RngRegistry(seed)
    switch = create_switch(switch_name, sim, rngs=rngs, bus=machine.node0.bus)
    gen0, gen1 = NicPort(sim, "g0"), NicPort(sim, "g1")
    sut0, sut1 = NicPort(sim, "s0"), NicPort(sim, "s1")
    connect_ports(gen0, sut0)
    connect_ports(gen1, sut1)
    a0 = switch.attach_phy(sut0)
    a1 = switch.attach_phy(sut1)
    switch.add_path(a0, a1)
    switch.add_path(a1, a0)
    cores = [machine.node0.add_core(f"sut{i}") for i in range(n_cores)]
    switch.bind_cores(cores)
    tb = Testbed(sim, machine, rngs, switch, cores[0], frame_size, scenario="p2p-multicore")
    from repro.traffic.moongen import saturating_rate

    rate = saturating_rate(frame_size)
    for gen, mon in ((gen0, gen1), (gen1, gen0)):
        tx = MoonGenTx(sim, gen, rate, frame_size)
        rx = MoonGenRx(sim, mon, frame_size)
        tx.start(0.0)
        tb.meters.append(rx.meter)
    return tb


def build_p2p_profile(switch_name: str, profile: SizeProfile, seed: int = 1) -> Testbed:
    """Unidirectional p2p with a frame-size mix instead of fixed frames."""
    sim = Simulator()
    machine = Machine(sim)
    rngs = RngRegistry(seed)
    switch = create_switch(switch_name, sim, rngs=rngs, bus=machine.node0.bus)
    sut_core = machine.node0.add_core("sut")
    gen0, gen1 = NicPort(sim, "g0"), NicPort(sim, "g1")
    sut0, sut1 = NicPort(sim, "s0"), NicPort(sim, "s1")
    connect_ports(gen0, sut0)
    connect_ports(gen1, sut1)
    switch.add_path(switch.attach_phy(sut0), switch.attach_phy(sut1))
    switch.bind_core(sut_core)

    mean_size = int(round(profile.mean_size))
    tx = MoonGenTx(
        sim, gen0, profile.line_rate_pps(), mean_size,
        size_profile=profile, rng=rngs.stream("moongen.sizes"),
    )
    rx = MoonGenRx(sim, gen1, mean_size)
    tx.start(0.0)
    tb = Testbed(sim, machine, rngs, switch, sut_core, mean_size, scenario=f"p2p-{profile.name}")
    tb.meters.append(rx.meter)
    return tb
