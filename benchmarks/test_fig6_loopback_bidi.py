"""Fig. 6: bidirectional loopback throughput, chains of 1-5 VNFs."""

from __future__ import annotations

from conftest import run_once
from repro.analysis.tables import format_table
from repro.switches.registry import ALL_SWITCHES

from test_fig5_loopback_uni import CHAINS, _measure


def test_fig6_loopback_bidirectional(benchmark):
    grids = run_once(benchmark, lambda: _measure(bidirectional=True))
    print()
    for size, rows in grids.items():
        print(
            format_table(
                ["switch"] + [f"{n} VNF" for n in CHAINS],
                rows,
                title=f"Fig. 6 -- loopback bidirectional throughput (Gbps, aggregate), {size}B",
            )
        )
        print()
    rows64 = {row[0]: row for row in grids[64]}
    rows1024 = {row[0]: row for row in grids[1024]}
    # Degradation with chain length for every switch (Sec. 5.2).
    for name in ALL_SWITCHES:
        series = [g for g in rows64[name][1:] if g is not None]
        assert series[0] >= series[-1], name
    # VALE's 1024B bidirectional performance drops beyond short chains.
    assert rows1024["vale"][4] < rows1024["vale"][1]
    # Snabb's overload is even harsher bidirectionally.
    assert rows64["snabb"][4] < rows64["snabb"][3]
