"""Table 5: use-case summary, *derived* from measurements.

The paper's Table 5 condenses the whole evaluation into per-switch
recommendations.  This bench recomputes the quantitative half of those
claims from fresh measurements and checks them against the curated
:data:`repro.switches.taxonomy.USE_CASES`.
"""

from __future__ import annotations

from conftest import BENCH_MEASURE_NS, BENCH_WARMUP_NS, run_once
from repro.analysis.tables import format_table
from repro.measure.throughput import measure_throughput
from repro.scenarios import loopback, p2p, v2v
from repro.switches.registry import ALL_SWITCHES
from repro.switches.taxonomy import USE_CASES
from repro.vm.machine import QemuCompatibilityError


def _measure():
    scores = {}
    for name in ALL_SWITCHES:
        p2p_gbps = measure_throughput(
            p2p.build, name, 64, bidirectional=True,
            warmup_ns=BENCH_WARMUP_NS, measure_ns=BENCH_MEASURE_NS,
        ).gbps
        v2v_gbps = measure_throughput(
            v2v.build, name, 64,
            warmup_ns=BENCH_WARMUP_NS, measure_ns=BENCH_MEASURE_NS,
        ).gbps
        try:
            chain_gbps = measure_throughput(
                loopback.build, name, 1024, n_vnfs=4,
                warmup_ns=BENCH_WARMUP_NS, measure_ns=BENCH_MEASURE_NS,
            ).gbps
            chain_note = ""
        except QemuCompatibilityError:
            chain_gbps = None
            chain_note = "QEMU limit (max 3 VMs)"
        scores[name] = (p2p_gbps, v2v_gbps, chain_gbps, chain_note)
    return scores


def test_table5_use_cases(benchmark):
    scores = run_once(benchmark, _measure)
    print()
    rows = [
        [name, *values[:3], USE_CASES[name][0]]
        for name, values in scores.items()
    ]
    print(
        format_table(
            ["switch", "p2p bidi 64B", "v2v 64B", "4-VNF chain 1024B", "paper: best at"],
            rows,
            title="Table 5 -- use cases, derived from measurement",
        )
    )
    # "BESS: forwarding between physical NICs" -- best p2p.
    assert scores["bess"][0] == max(s[0] for s in scores.values())
    # "BESS: incompatible with newer QEMU" -- no 4-VNF chain result.
    assert scores["bess"][2] is None
    # "VALE: VNF chaining with high workload" -- best 4-VNF 1024B chain.
    chains = {n: s[2] for n, s in scores.items() if s[2] is not None}
    assert chains["vale"] == max(chains.values())
    # "Snabb: bottlenecked with multiple VNFs".
    assert chains["snabb"] == min(chains.values())
    # VALE also dominates inter-VM switching.
    assert scores["vale"][1] == max(s[1] for s in scores.values())
